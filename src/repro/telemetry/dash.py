"""``repro dash`` — a zero-dependency live ops dashboard over the bus.

Pure standard library: :class:`http.server.ThreadingHTTPServer` serves one
inline HTML/JS page and a Server-Sent-Events stream; no template engine,
no websocket library, no JS build step.  The browser opens
``EventSource('/events')`` and receives

* ``metrics`` events — the :class:`~repro.telemetry.aggregate.Aggregator`
  snapshot (windowed counter rates, gauge last/min/max, histogram
  summaries, span tallies), emitted every *interval* seconds per client;
* ``epoch`` events — pushed immediately when a recovery-lifecycle span
  (prune / failover / quarantine / rejoin / renegotiate / switch …)
  closes on the bus;
* one ``hello`` event on connect with the static context (workload
  parameters, the BenchWatch baseline table).

Slow consumers cannot stall the instrumented run: bus callbacks copy
events into a bounded per-client :class:`queue.Queue` and **drop the
oldest** on overflow — the live view degrades, the run does not.

Endpoints: ``/`` (the page), ``/events`` (SSE), ``/api/snapshot`` (one
aggregator snapshot as JSON), ``/metrics`` (Prometheus text exposition of
the underlying registry), ``/healthz``.

:func:`run_dash_workload` is the canonical thing to watch: a seeded
chaos/recovery story (crashes, a rejoin, renegotiations, schedule
switches) on a smooth-rate platform, driven through
:func:`~repro.faults.recovery.resilient_run` with a
:class:`~repro.telemetry.live.LiveRegistry` — the workload behind
``repro dash`` and the headless ``make dash-smoke`` gate.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from .aggregate import EPOCH_SPAN_NAMES, Aggregator, span_record
from .bench import BenchWatch
from .core import Span
from .exporters import prometheus_text
from .live import LiveRegistry

#: Immediate-push span names (the recovery lifecycle, not per-transaction
#: chatter — transactions arrive through the aggregated snapshot instead).
PUSH_SPANS = EPOCH_SPAN_NAMES

_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>repro — live ops</title>
<style>
 body{font:13px/1.45 system-ui,sans-serif;margin:0;background:#111;color:#ddd}
 header{padding:10px 16px;background:#1b1b1b;border-bottom:1px solid #333}
 header b{color:#7fd4ff} #state{float:right;color:#888}
 main{display:grid;grid-template-columns:repeat(auto-fit,minmax(340px,1fr));
      gap:12px;padding:12px}
 section{background:#1b1b1b;border:1px solid #2a2a2a;border-radius:6px;
         padding:10px 12px;min-height:90px}
 h2{margin:0 0 8px;font-size:13px;color:#7fd4ff;font-weight:600}
 table{border-collapse:collapse;width:100%} td,th{padding:1px 6px;
   text-align:right;font-variant-numeric:tabular-nums}
 th{color:#888;font-weight:400;text-align:right} td:first-child,
 th:first-child{text-align:left;color:#aaa}
 .bar{background:#2f6;height:8px;border-radius:2px}
 .ok{color:#7f7} .bad{color:#f77} .dim{color:#777}
 #epochs li{list-style:none;margin:2px 0} #epochs ul{margin:0;padding:0}
 .kind{display:inline-block;min-width:78px;color:#fc7}
 progress{width:100%;height:10px}
</style></head><body>
<header><b>repro</b> live ops plane <span id="state">connecting…</span></header>
<main>
 <section><h2>negotiation progress</h2><div id="nego" class="dim">no data</div></section>
 <section><h2>recovery epochs</h2><div id="epochs" class="dim">no data</div></section>
 <section><h2>simulator</h2><div id="sim" class="dim">no data</div></section>
 <section><h2>incr-solver cache</h2><div id="cache" class="dim">no data</div></section>
 <section><h2>runtime octets / edge</h2><div id="octets" class="dim">no data</div></section>
 <section><h2>task plane</h2><div id="taskplane" class="dim">no data</div></section>
 <section><h2>benchwatch</h2><div id="bench" class="dim">no data</div></section>
 <section><h2>federation</h2><div id="fed" class="dim">no data</div></section>
</main>
<script>
const $=id=>document.getElementById(id);
let hello=null, epochs=[];
function fmt(x){return x==null?"—":(Math.abs(x)>=1000?x.toLocaleString():
  (Number.isInteger(x)?x:x.toFixed(3)))}
function table(rows,hdr){let h="<table>";if(hdr)h+="<tr>"+hdr.map(c=>`<th>${c}</th>`).join("")+"</tr>";
  for(const r of rows)h+="<tr>"+r.map(c=>`<td>${c}</td>`).join("")+"</tr>";return h+"</table>"}
function sum(list,pred){let t=0;for(const m of list)if(pred(m))t+=m.total??m.value??0;return t}
function rate(list,pred){let t=0;for(const m of list)if(pred(m))t+=m.rate??0;return t}
function render(s){
  $("state").textContent=`spans ${s.spans.total} · up ${fmt(s.uptime_s)}s`;
  const C=s.counters,G=s.gauges;
  const tx=s.negotiation;
  let rows=Object.entries(tx.by_proposer).map(([k,v])=>[k,v]);
  $("nego").innerHTML=`transactions: <b>${tx.transactions}</b> · messages: `+
    `<b>${fmt(sum(C,m=>m.name=="protocol.messages"))}</b>`+
    (rows.length?table(rows.slice(0,8),["proposer subtree","transactions"]):"");
  const ev=G.find(g=>g.name=="sim.events_processed"),
        clock=G.find(g=>g.name=="sim.clock"),
        hor=G.find(g=>g.name=="sim.horizon");
  const buf=G.filter(g=>g.name=="sim.buffer");
  const bufNow=sum(buf,()=>true), bufMax=Math.max(0,...buf.map(g=>g.max??0));
  let sim=`events: <b>${fmt(ev?.value)}</b> · task rate `+
    `<b>${fmt(rate(C,m=>m.name=="sim.tasks_computed"))}/s</b><br>`+
    `buffers: now ${fmt(bufNow)} · window max ${fmt(bufMax)}`;
  if(clock&&hor&&hor.value)sim+=`<br>virtual clock ${fmt(clock.value)} / `+
    `${fmt(hor.value)} <progress max="${hor.value}" value="${clock.value}"></progress>`;
  $("sim").innerHTML=sim;
  const cName=n=>sum(C,m=>m.name==n);
  const hits=cName("incr.hit.absorbed")+cName("incr.hit.saturated")+cName("incr.hit.exact");
  const miss=cName("incr.miss"), evals=cName("incr.evals");
  $("cache").innerHTML=table([
    ["node evals",fmt(evals)],["hits",fmt(hits)],["misses",fmt(miss)],
    ["hit ratio",hits+miss?((100*hits/(hits+miss)).toFixed(1)+"%"):"—"],
    ["invalidations",fmt(cName("incr.invalidations"))],
    ["evictions",fmt(cName("incr.evictions")+cName("incr.memo_evictions"))],
    ["memo eviction rate",fmt(rate(C,m=>m.name=="incr.memo_evictions"))+"/s"]]);
  const shards=C.filter(m=>m.name=="federation.resolves")
    .sort((a,b)=>(a.labels.shard??"").localeCompare(b.labels.shard??""))
    .map(m=>[m.labels.shard,fmt(m.total),fmt(m.rate)+"/s"]);
  if(shards.length){
    const gName=n=>G.find(g=>g.name==n)?.value;
    const mh=gName("federation.memo.hits"),mm=gName("federation.memo.misses"),
          xt=gName("federation.memo.cross_tenant_hits");
    let fed=table(shards,["shard","re-solves","rate"]);
    fed+=`memo: hits <b>${fmt(mh)}</b> · misses <b>${fmt(mm)}</b>`+
      ` · hit ratio <b>${mh+mm?((100*mh/(mh+mm)).toFixed(1)+"%"):"—"}</b><br>`+
      `cross-tenant hits <b>${fmt(xt)}</b> · entries `+
      `<b>${fmt(gName("federation.memo.entries"))}</b> · respawns `+
      `<b>${fmt(sum(C,m=>m.name=="federation.respawns"))}</b>`;
    $("fed").innerHTML=fed;
  }
  const edges=C.filter(m=>m.name=="runtime.tcp.edge_octets")
    .sort((a,b)=>b.total-a.total).slice(0,10)
    .map(m=>[m.labels.edge,fmt(m.total)]);
  $("octets").innerHTML=edges.length?table(edges,["edge","octets"]):
    `<span class="dim">no TCP runtime traffic (run with --runtime tcp)</span>`;
  const depth=G.filter(g=>g.name=="taskplane.buffer_depth");
  const bound=n=>G.find(g=>g.name=="taskplane.buffer_bound"&&
    g.labels.node==n)?.value;
  if(depth.length){
    const tpRows=depth.sort((a,b)=>(b.max??0)-(a.max??0)).slice(0,10)
      .map(g=>{const b=bound(g.labels.node);
        const over=b!=null&&(g.max??0)>b;
        return [g.labels.node,fmt(g.value),fmt(g.max),fmt(b),
          `<span class="${over?"bad":"ok"}">${over?"NO":"yes"}</span>`]});
    $("taskplane").innerHTML=
      `completions: <b>${fmt(sum(C,m=>m.name=="taskplane.completions"))}</b>`+
      ` · rate <b>${fmt(rate(C,m=>m.name=="taskplane.completions"))}/s</b>`+
      ` · resends <b>${fmt(sum(C,m=>m.name=="taskplane.resends"))}</b>`+
      table(tpRows,["edge→node","buffer now","peak","bound","within"]);
  }
}
function renderEpochs(){
  if(!epochs.length)return;
  $("epochs").innerHTML="<ul>"+epochs.slice(-14).map(e=>
    `<li><span class="kind">${e.name}</span> ${e.tags.epoch??""} `+
    `<span class="dim">t=${fmt(e.start)}→${fmt(e.end)}</span> `+
    `${e.tags.crashed??e.tags.child??e.tags.grafted??e.tags.elected??""}</li>`)
    .reverse().join("")+"</ul>";
}
function renderBench(b){
  if(!b)return;
  let html="";
  if(b.live&&b.live.status!="no-data"){
    const cls=b.live.status=="ok"?"ok":"bad";
    html+=`live run: <span class="${cls}">${b.live.status}</span> `+
      `(${fmt(b.live.live_wall_per_epoch)}s/epoch/node vs baseline `+
      `${fmt(b.live.baseline_wall_per_epoch)}s, ×${fmt(b.live.ratio)}, `+
      `tol ×${b.live.tolerance})<br>`;
  }
  html+=table(b.table.slice(0,12).map(r=>[r.bench,
    Object.entries(r.params).map(([k,v])=>`${k}=${v}`).join(" "),
    fmt(r.wall_s),fmt(r.node_evals)]),
    ["bench","params","wall s","node evals"]);
  $("bench").innerHTML=html;
}
const es=new EventSource("/events");
es.addEventListener("hello",e=>{hello=JSON.parse(e.data);
  renderBench(hello.benchwatch)});
es.addEventListener("metrics",e=>{const s=JSON.parse(e.data);
  epochs=s.epochs;render(s);renderEpochs();
  if(s.benchwatch)renderBench(s.benchwatch)});
es.addEventListener("epoch",e=>{epochs.push(JSON.parse(e.data));renderEpochs()});
es.onerror=()=>{$("state").textContent="disconnected"};
</script></body></html>
"""


class Dashboard:
    """The live server: one :class:`LiveRegistry` in, HTTP + SSE out."""

    def __init__(self, registry: Optional[LiveRegistry] = None,
                 host: str = "127.0.0.1", port: int = 8787,
                 interval: float = 1.0, baseline_dir=None,
                 wall_tolerance: float = 1.3, queue_size: int = 512):
        self.registry = registry if registry is not None else LiveRegistry()
        self.aggregator = Aggregator(self.registry.bus)
        self.interval = interval
        self.benchwatch = (BenchWatch(baseline_dir, wall_tolerance)
                           if baseline_dir is not None else None)
        #: mutated by the workload thread; surfaced in snapshots
        self.workload: Dict[str, Any] = {"status": "idle"}
        self._clients: set = set()
        self._clients_lock = threading.Lock()
        self._stopped = threading.Event()
        self.registry.bus.on_span(self._push_span)
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/"

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "Dashboard":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-dash", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopped.set()
        if self._thread is not None:
            # shutdown() handshakes with serve_forever — only safe (it
            # would block forever otherwise) once start() actually ran
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.aggregator.detach()
        self.registry.bus.unsubscribe(self._push_span)

    # ------------------------------------------------------------------
    def _push_span(self, span: Span) -> None:
        if span.name not in PUSH_SPANS:
            return
        self._broadcast("epoch", span_record(span))

    def _broadcast(self, event: str, payload: Dict[str, Any]) -> None:
        with self._clients_lock:
            clients = tuple(self._clients)
        for q in clients:
            try:
                q.put_nowait((event, payload))
            except queue.Full:
                try:  # drop the oldest: the live view degrades, not the run
                    q.get_nowait()
                    q.put_nowait((event, payload))
                except (queue.Empty, queue.Full):
                    pass

    def _add_client(self, q: "queue.Queue") -> None:
        with self._clients_lock:
            self._clients.add(q)

    def _drop_client(self, q: "queue.Queue") -> None:
        with self._clients_lock:
            self._clients.discard(q)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        snap = self.aggregator.snapshot()
        snap["workload"] = dict(self.workload)
        if self.benchwatch is not None:
            snap["benchwatch"] = {
                "table": self.benchwatch.table(),
                "live": self.benchwatch.check_live(
                    epochs=self.workload.get("epochs"),
                    wall_s=self.workload.get("wall_s"),
                    nodes=self.workload.get("nodes"),
                ),
            }
        return snap

    def hello(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"workload": dict(self.workload),
                                   "interval": self.interval}
        if self.benchwatch is not None:
            payload["benchwatch"] = {"table": self.benchwatch.table(),
                                     "live": {"status": "no-data"}}
        return payload


def _make_handler(dash: Dashboard):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-dash/1"
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # quiet: the CLI narrates
            pass

        def _reply(self, body: bytes, content_type: str,
                   status: int = 200) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            try:
                if path == "/":
                    self._reply(_PAGE.encode("utf-8"),
                                "text/html; charset=utf-8")
                elif path == "/events":
                    self._sse()
                elif path == "/api/snapshot":
                    self._reply(json.dumps(dash.snapshot()).encode("utf-8"),
                                "application/json")
                elif path == "/metrics":
                    self._reply(prometheus_text(dash.registry).encode("utf-8"),
                                "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/healthz":
                    self._reply(b"ok\n", "text/plain")
                else:
                    self._reply(b"not found\n", "text/plain", status=404)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

        def _sse(self) -> None:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            self.end_headers()

            def emit(event: str, payload: Dict[str, Any]) -> None:
                data = json.dumps(payload)
                self.wfile.write(
                    f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
                self.wfile.flush()

            q: "queue.Queue" = queue.Queue(maxsize=512)
            dash._add_client(q)
            try:
                emit("hello", dash.hello())
                emit("metrics", dash.snapshot())
                while not dash._stopped.is_set():
                    try:
                        event, payload = q.get(timeout=dash.interval)
                    except queue.Empty:
                        event, payload = "metrics", dash.snapshot()
                    emit(event, payload)
            except (BrokenPipeError, ConnectionResetError):
                pass
            finally:
                dash._drop_client(q)

    return Handler


# ----------------------------------------------------------------------
# the canonical workload: a seeded chaos/recovery run, streamed live
# ----------------------------------------------------------------------
def run_dash_workload(registry: LiveRegistry, nodes: int = 1000,
                      seed: int = 1, runtime: Optional[str] = None,
                      state: Optional[Dict[str, Any]] = None,
                      taskplane_tasks: int = 120,
                      kernel: str = "array"):
    """A seeded crash→quarantine→rejoin recovery story on a smooth-rate
    platform, instrumented into *registry* (pass the dashboard's).

    Smooth platforms (:func:`~repro.platform.generators.smooth_tree`) keep
    the global period small at any size, so a 1000-node story simulates in
    seconds while streaming thousands of bus events.  *runtime* routes the
    re-negotiations through the real asyncio runtime (``"tcp"`` populates
    the per-edge octet panel).  *state*, when given, is mutated in place
    (``status`` / ``wall_s`` / ``epochs``) for BenchWatch drift checks.

    After the recovery story, a live task plane executes
    *taskplane_tasks* real payloads on the Section 8 tree into the same
    registry — the ``taskplane.*`` gauges feed the per-edge
    occupancy-vs-bound panel (0 skips the phase).

    *kernel* picks the supervised simulation's time kernel; the default
    is the struct-of-arrays ``"array"`` kernel, the fastest at dashboard
    scale (bit-identical to the others — the ``sim.events_processed`` and
    ``sim.clock`` gauges stream the same values either way).
    """
    from fractions import Fraction

    from ..faults.plan import FaultPlan, NodeCrash, NodeRejoin
    from ..faults.recovery import resilient_run
    from ..platform.generators import smooth_tree

    if state is None:
        state = {}
    state["status"] = "running"
    state["nodes"] = nodes
    t0 = time.monotonic()
    try:
        tree = smooth_tree(nodes, seed)
        leaves = sorted((n for n in tree.leaves() if n != tree.root),
                        key=str)
        victims = leaves[:: max(1, len(leaves) // 3)][:3]
        crashes = tuple(
            NodeCrash(node, Fraction(2 + 2 * i))
            for i, node in enumerate(victims)
        )
        # the first victim is repaired once its death has been declared
        # (default detection: interval 1, timeout 1/2 → declared at 2.5)
        rejoins = (NodeRejoin(victims[0], Fraction(8)),) if victims else ()
        plan = FaultPlan(crashes=crashes, rejoins=rejoins, seed=seed)
        report = resilient_run(
            tree, plan, telemetry=registry, runtime=runtime, kernel=kernel,
        )
        state["wall_s"] = time.monotonic() - t0
        state["epochs"] = len(report.epochs)
        state["rate_after"] = float(report.rate_after)
        if taskplane_tasks:
            from ..platform.examples import paper_figure4_tree
            from ..taskplane import run_plane

            state["status"] = "task plane"
            plane = run_plane(paper_figure4_tree(), "inproc",
                              max_tasks=taskplane_tasks, registry=registry)
            state["taskplane"] = {
                "completed": plane.completed,
                "lost": plane.lost,
                "duplicates": plane.duplicates,
                "convergence": plane.convergence,
                "occupancy_ok": plane.occupancy_ok(),
            }
        state["status"] = "done"
        return report
    except BaseException as exc:
        state["status"] = f"error: {exc}"
        raise


def serve_dashboard(nodes: int = 1000, seed: int = 1, host: str = "127.0.0.1",
                    port: int = 8787, runtime: Optional[str] = None,
                    baseline_dir=None, interval: float = 1.0,
                    workload: bool = True, kernel: str = "array") -> Dashboard:
    """Start a :class:`Dashboard` (and optionally its chaos workload in a
    background thread); returns the running dashboard.  The caller owns
    shutdown via :meth:`Dashboard.stop`."""
    dash = Dashboard(host=host, port=port, interval=interval,
                     baseline_dir=baseline_dir).start()
    if workload:
        thread = threading.Thread(
            target=run_dash_workload,
            args=(dash.registry,),
            kwargs=dict(nodes=nodes, seed=seed, runtime=runtime,
                        state=dash.workload, kernel=kernel),
            name="repro-dash-workload", daemon=True,
        )
        thread.start()
    return dash
