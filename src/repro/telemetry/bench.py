"""Baseline loading and drift detection over the committed ``BENCH_*.json``
files.

One comparison engine serves two consumers:

* ``benchmarks/check_baseline.py`` (``make bench-check``) re-runs the
  recorders from :mod:`benchmarks.record_baseline` and gates CI on the
  result — ``node_evals`` must match **exactly** (it is the
  machine-independent cost metric; a change means behaviour changed, not
  the host), while wall clock merely has to stay under a configurable
  ratio (default 1.3×, loosened in CI where hosts differ);
* the dashboard's *BenchWatch* panel loads the same baselines and flags
  live-run drift against them while a run is streaming.

Records are matched by their ``params`` dict, so a reordered or extended
recorder degrades into explicit "unmatched" drift rows instead of silent
misalignment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Optional

#: Baselines the regression gate re-runs (e24/e29 are overhead probes with
#: their own assertion, not wall/evals gates).
GATED_BENCHES = ("e8_protocol_scaling", "e25_runtime", "e26_incremental",
                 "e27_timeline", "e28_chaos", "e30_taskplane",
                 "e31_arraykernel", "e32_federation")


class Drift(NamedTuple):
    """One comparison row; ``ok`` is False when the gate should fail."""

    bench: str
    params: Dict[str, Any]
    metric: str            # "node_evals" | "wall_s" | "matching"
    baseline: Optional[float]
    measured: Optional[float]
    ratio: Optional[float]
    ok: bool

    def describe(self) -> str:
        status = "ok  " if self.ok else "DRIFT"
        ratio = "" if self.ratio is None else f" ({self.ratio:.2f}x)"
        params = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (f"{status} {self.bench} [{params}] {self.metric}: "
                f"{self.baseline} -> {self.measured}{ratio}")


def baseline_path(root, bench: str) -> Path:
    return Path(root) / f"BENCH_{bench}.json"


def load_baseline(path) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != 1:
        raise ValueError(f"{path}: unsupported baseline schema "
                         f"{payload.get('schema')!r}")
    return payload


def load_baselines(root, benches: Iterable[str] = GATED_BENCHES
                   ) -> Dict[str, Dict[str, Any]]:
    """Every committed baseline under *root* (missing files are skipped)."""
    out = {}
    for bench in benches:
        path = baseline_path(root, bench)
        if path.exists():
            out[bench] = load_baseline(path)
    return out


def _param_key(params: Dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in params.items()))


def compare_records(bench: str, baseline: List[Dict[str, Any]],
                    measured: List[Dict[str, Any]],
                    wall_tolerance: float = 1.3) -> List[Drift]:
    """Drift rows for one bench: exact on ``node_evals``, ratio-gated on
    ``wall_s``, plus an ``ok=False`` row per unmatched record."""
    drifts: List[Drift] = []
    measured_by_key = {_param_key(r["params"]): r for r in measured}
    for record in baseline:
        key = _param_key(record["params"])
        got = measured_by_key.pop(key, None)
        if got is None:
            drifts.append(Drift(bench, record["params"], "matching",
                                record["node_evals"], None, None, False))
            continue
        evals_ok = got["node_evals"] == record["node_evals"]
        drifts.append(Drift(bench, record["params"], "node_evals",
                            record["node_evals"], got["node_evals"],
                            None, evals_ok))
        base_wall = record["wall_s"]
        ratio = (got["wall_s"] / base_wall) if base_wall else None
        drifts.append(Drift(bench, record["params"], "wall_s",
                            base_wall, got["wall_s"], ratio,
                            ratio is None or ratio <= wall_tolerance))
    for key, got in measured_by_key.items():
        drifts.append(Drift(bench, got["params"], "matching",
                            None, got["node_evals"], None, False))
    return drifts


def summarise(drifts: Iterable[Drift]) -> Dict[str, Any]:
    rows = list(drifts)
    bad = [d for d in rows if not d.ok]
    return {"checked": len(rows), "failed": len(bad),
            "ok": not bad, "drifts": [d.describe() for d in bad]}


class BenchWatch:
    """Dashboard-side view over the committed baselines.

    Exposes the baseline table for display and a live drift check: the
    dashboard's chaos/recovery workload reports its own epoch count and
    wall clock, which :meth:`check_live` holds against the e28 chaos
    baseline (the only recorded workload of the same shape).
    """

    def __init__(self, root, wall_tolerance: float = 1.3):
        self.root = Path(root)
        self.wall_tolerance = wall_tolerance
        self.baselines = load_baselines(root)

    def table(self) -> List[Dict[str, Any]]:
        rows = []
        for bench, payload in sorted(self.baselines.items()):
            for record in payload["records"]:
                rows.append({"bench": bench, "params": record["params"],
                             "wall_s": record["wall_s"],
                             "node_evals": record["node_evals"]})
        return rows

    #: mean platform size of the e28 chaos generator (5–8 nodes uniform) —
    #: used to normalise its per-epoch wall cost to a per-node figure
    E28_MEAN_NODES = 6.5

    def check_live(self, epochs: Optional[int] = None,
                   wall_s: Optional[float] = None,
                   nodes: Optional[int] = None) -> Dict[str, Any]:
        """Drift verdict for a live chaos/recovery run.

        Compares the live run's wall cost *per epoch per node* to the e28
        chaos baseline (its ``node_evals`` records the supervisor's epoch
        count over the sweep), since the dashboard workload runs a
        different platform size and sequence count than the recorded
        sweep.  Renegotiation cost is linear in platform size, so the
        per-node normalisation makes the two comparable.
        """
        chaos = self.baselines.get("e28_chaos")
        if not chaos or not epochs or wall_s is None:
            return {"status": "no-data"}
        record = chaos["records"][0]
        base = record["wall_s"] / max(record["node_evals"], 1) / self.E28_MEAN_NODES
        live = wall_s / epochs / max(nodes or 1, 1)
        ratio = live / base if base else None
        ok = ratio is None or ratio <= self.wall_tolerance
        return {"status": "ok" if ok else "drift",
                "baseline_wall_per_epoch": round(base, 9),
                "live_wall_per_epoch": round(live, 9),
                "ratio": None if ratio is None else round(ratio, 3),
                "tolerance": self.wall_tolerance, "epochs": epochs,
                "nodes": nodes}
