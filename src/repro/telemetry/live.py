"""Streaming side of the telemetry plane: a :class:`MetricsBus` that fans
span-close and metric-delta events to subscribers, a :class:`LiveRegistry`
whose instruments publish onto the bus, and trace-stitching helpers that
merge per-actor JSONL streams back into one causally-ordered trace.

The bus sits strictly *beside* the recording path, never inside it:

* a plain :class:`~repro.telemetry.core.Registry` (or a disabled run with
  ``telemetry=None`` / :data:`~repro.telemetry.core.NULL`) never touches
  this module, so the disabled path stays bit-identical to the seed;
* a :class:`LiveRegistry` records exactly what a plain registry records —
  its instruments are subclasses that first delegate to the base class —
  and *additionally* publishes a :class:`MetricEvent` per mutation and a
  span per close.  Subscribers therefore see deltas in real time while
  the registry remains a complete batch export at the end.

Subscribers run synchronously inside the instrumented code, so they must
be cheap and must never block: the dashboard's SSE layer copies events
into bounded per-client queues and drops the oldest on overflow.

Trace correlation: :func:`mint_trace_id` issues the per-negotiation id
that ``run_protocol`` / the runtime / ``resilient_run`` stamp onto spans
and thread through :class:`~repro.protocol.messages.Proposal` /
:class:`~repro.protocol.messages.Acknowledgment` (and the TCP codec's
length|CRC32|body frames).  :func:`stitch_chrome_trace` merges several
JSONL event logs — one per actor or per process — by remapping span ids
and grouping on the ``trace`` tag, producing a single Chrome trace with
flow events across every actor of one negotiation.
"""

from __future__ import annotations

import json
import threading
import uuid
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from .core import Counter, Gauge, Histogram, LabelKey, Registry, Span, _label_key
from .exporters import chrome_trace


class MetricEvent(NamedTuple):
    """One instrument mutation: *kind* is ``counter``/``gauge``/``histogram``,
    *value* the post-mutation value (gauge: the new value; histogram: the
    observation count), *delta* the mutation itself (gauge: the new value;
    histogram: the observed sample)."""

    kind: str
    name: str
    labels: LabelKey
    value: Any
    delta: Any


class MetricsBus:
    """Fan-out hub for metric deltas and span closes.

    Subscription lists are copied on write and read without the lock
    (publishing happens on the instrumented code's hot path), so
    subscribers may attach/detach from other threads at any time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metric_subs: Tuple = ()
        self._span_subs: Tuple = ()

    # -- subscription --------------------------------------------------
    def on_metric(self, fn) -> None:
        """Call *fn(event: MetricEvent)* after every instrument mutation."""
        with self._lock:
            self._metric_subs = self._metric_subs + (fn,)

    def on_span(self, fn) -> None:
        """Call *fn(span)* whenever a span closes."""
        with self._lock:
            self._span_subs = self._span_subs + (fn,)

    def unsubscribe(self, fn) -> None:
        # equality, not identity: bound methods (agg.on_metric) construct
        # a fresh object per attribute access, but compare equal
        with self._lock:
            self._metric_subs = tuple(s for s in self._metric_subs if s != fn)
            self._span_subs = tuple(s for s in self._span_subs if s != fn)

    # -- publication ---------------------------------------------------
    def publish_metric(self, event: MetricEvent) -> None:
        for fn in self._metric_subs:
            fn(event)

    def publish_span(self, span: Span) -> None:
        for fn in self._span_subs:
            fn(span)


class LiveCounter(Counter):
    __slots__ = ("_bus",)

    def __init__(self, name: str, labels: LabelKey, bus: MetricsBus):
        super().__init__(name, labels)
        self._bus = bus

    def inc(self, amount=1) -> None:
        Counter.inc(self, amount)
        self._bus.publish_metric(
            MetricEvent("counter", self.name, self.labels, self.value, amount))


class LiveGauge(Gauge):
    __slots__ = ("_bus",)

    def __init__(self, name: str, labels: LabelKey, bus: MetricsBus):
        super().__init__(name, labels)
        self._bus = bus

    def set(self, value) -> None:
        Gauge.set(self, value)
        self._bus.publish_metric(
            MetricEvent("gauge", self.name, self.labels, value, value))


class LiveHistogram(Histogram):
    __slots__ = ("_bus",)

    def __init__(self, name: str, labels: LabelKey, bus: MetricsBus):
        super().__init__(name, labels)
        self._bus = bus

    def observe(self, value) -> None:
        Histogram.observe(self, value)
        self._bus.publish_metric(
            MetricEvent("histogram", self.name, self.labels, self.count, value))


class LiveRegistry(Registry):
    """A :class:`Registry` whose instruments additionally publish onto a
    :class:`MetricsBus`.

    Everything recorded is byte-for-byte what a plain registry records;
    the live instruments call the base-class mutation first and publish
    second, so exporters and tests see no difference.  Span closes reuse
    the registry's own observer hook.
    """

    def __init__(self, bus: Optional[MetricsBus] = None):
        super().__init__()
        self.bus = bus if bus is not None else MetricsBus()
        self.on_span_close(self.bus.publish_span)

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = LiveCounter(name, key[1], self.bus)
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = LiveGauge(name, key[1], self.bus)
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = LiveHistogram(
                name, key[1], self.bus)
        return instrument


# ----------------------------------------------------------------------
# trace / epoch identifiers
# ----------------------------------------------------------------------
def mint_trace_id() -> str:
    """A fresh distributed-trace identifier (opaque, collision-safe)."""
    return "t" + uuid.uuid4().hex[:12]


def epoch_id(trace: str, index: int) -> str:
    """The per-epoch identifier: deterministic given the run's trace id."""
    return f"{trace}.e{index}"


# ----------------------------------------------------------------------
# stitching per-actor JSONL streams back into one trace
# ----------------------------------------------------------------------
def _parse_exact(value) -> Any:
    """Invert :func:`~repro.telemetry.exporters._exact`."""
    if value is None:
        return None
    try:
        return Fraction(value["exact"])
    except (ValueError, ZeroDivisionError, KeyError, TypeError):
        return value.get("float", 0) if isinstance(value, dict) else value


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Parse one JSONL event log into records, skipping blank lines."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def merge_jsonl(paths: Iterable) -> Registry:
    """Rebuild one :class:`Registry` from several JSONL event logs.

    Span ids are remapped with a per-file offset so streams exported from
    different registries (one per actor/process) never collide; parent
    links are preserved within each file.  Counters sum across files,
    gauges keep the last file's value, histograms merge their summaries.
    """
    merged = Registry()
    offset = 0
    for path in paths:
        id_map: Dict[int, int] = {}
        top = offset
        span_records = []
        for record in read_jsonl(path):
            kind = record.get("type")
            if kind == "span":
                span_records.append(record)
            elif kind == "counter":
                merged.counter(record["name"], **record.get("labels", {})).inc(
                    _parse_exact(record["value"]))
            elif kind == "gauge":
                merged.gauge(record["name"], **record.get("labels", {})).set(
                    _parse_exact(record["value"]))
            elif kind == "histogram":
                hist = merged.histogram(record["name"],
                                        **record.get("labels", {}))
                hist.count += record.get("count", 0)
                hist.sum += _parse_exact(record["sum"]) or 0
                for bound, better in (("min", min), ("max", max)):
                    value = _parse_exact(record.get(bound))
                    if value is not None:
                        prior = getattr(hist, bound)
                        setattr(hist, bound,
                                value if prior is None else better(prior, value))
        for record in span_records:
            new_id = offset + record["id"]
            id_map[record["id"]] = new_id
            top = max(top, new_id)
            span = Span(new_id, record["name"], record.get("node"),
                        _parse_exact(record["start"]), None,
                        dict(record.get("tags", {})))
            span.end = _parse_exact(record.get("end"))
            parent = record.get("parent")
            if parent is not None:
                # Streams flush in close order, so a parent may appear
                # after its children; remap in a second pass below.
                span.parent_id = parent
            merged.spans.append(span)
        for span in merged.spans[len(merged.spans) - len(span_records):]:
            if span.parent_id is not None:
                span.parent_id = id_map.get(span.parent_id)
        offset = top
    merged._next_span_id = offset + 1
    merged.spans.sort(key=lambda s: (s.start, s.id))
    return merged


def filter_trace(registry: Registry, trace_id: str) -> Registry:
    """Spans belonging to one distributed trace.

    A span belongs if it (or its nearest tagged ancestor) carries
    ``trace == trace_id``; metric instruments are copied through
    untouched (they are not trace-scoped).
    """
    by_id = {span.id: span for span in registry.spans}

    def trace_of(span: Span) -> Optional[str]:
        seen = set()
        while span is not None and span.id not in seen:
            seen.add(span.id)
            tag = span.tags.get("trace")
            if tag is not None:
                return tag
            span = by_id.get(span.parent_id)
        return None

    out = Registry()
    out._counters = registry._counters
    out._gauges = registry._gauges
    out._histograms = registry._histograms
    out.spans = [s for s in registry.spans if trace_of(s) == trace_id]
    out._next_span_id = registry._next_span_id
    return out


def trace_ids(registry: Registry) -> List[str]:
    """Every distinct ``trace`` tag present, in first-seen order."""
    seen: Dict[str, None] = {}
    for span in registry.spans:
        tag = span.tags.get("trace")
        if tag is not None and tag not in seen:
            seen[tag] = None
    return list(seen)


def stitch_chrome_trace(paths: Iterable, trace_id: Optional[str] = None,
                        time_scale: int = 1000) -> Dict[str, Any]:
    """Merge per-actor JSONL streams into one Chrome trace document.

    With *trace_id* the output is restricted to that distributed trace;
    otherwise every span survives.  Flow events (emitted by
    :func:`~repro.telemetry.exporters.chrome_trace`) link each span to
    its activator across actor tracks.
    """
    merged = merge_jsonl(paths)
    if trace_id is not None:
        merged = filter_trace(merged, trace_id)
    return chrome_trace(merged, time_scale=time_scale)
