"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The sub-classes separate the three broad
failure domains: malformed platform descriptions, infeasible or inconsistent
scheduling computations, and simulation-time violations of the single-port
full-overlap model.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class PlatformError(ReproError):
    """A platform (tree) description is malformed.

    Raised for duplicate node names, unknown parents, non-positive weights,
    edges that would create a cycle, and similar structural problems.
    """


class ScheduleError(ReproError):
    """A schedule computation is inconsistent.

    Raised when a conservation law is violated, when a period cannot be
    derived (e.g. irrational input sneaked in), or when a local schedule is
    asked to order quantities that do not match its bunch size.
    """


class SimulationError(ReproError):
    """The simulator detected an impossible state.

    This signals a bug in a scheduling policy (e.g. two concurrent sends from
    a single-port node) rather than a user input error.
    """


class ProtocolError(ReproError):
    """The distributed BW-First protocol received an out-of-order message.

    Carries optional diagnostic context so failures under fault injection
    are attributable: the *node* whose state machine complained, the virtual
    *time* the transport had reached, and the *pending* transaction (child,
    β, transaction id) the node was blocked on, if any.  The context is
    appended to the rendered message.
    """

    def __init__(self, message: str, *, node=None, time=None, pending=None):
        self.node = node
        self.time = time
        self.pending = pending
        context = []
        if node is not None:
            context.append(f"node={node!r}")
        if time is not None:
            context.append(f"t={time}")
        if pending is not None:
            context.append(f"pending={pending!r}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class CodecError(ProtocolError):
    """A wire frame failed validation before reaching any state machine.

    Raised by :mod:`repro.runtime.codec` for oversized length prefixes,
    checksum mismatches, non-UTF-8 payloads, malformed JSON, unknown frame
    types and unparsable rationals.  *recoverable* distinguishes a frame
    that was fully consumed (the stream's framing survived, the reader may
    skip it and continue) from one after which resynchronisation is
    impossible (an untrustworthy length prefix: the stream must be
    abandoned).  Either way the error is typed so a reader loop can contain
    hostile bytes instead of dying on a raw :class:`ValueError`.
    """

    def __init__(self, message: str, *, recoverable: bool = True, **context):
        super().__init__(message, **context)
        self.recoverable = recoverable


class TaskPlaneError(ReproError):
    """The task data plane violated one of its own invariants.

    Raised when payload execution breaks a structural guarantee: a buffer
    exceeding its credit-enforced capacity, a task routed to a node with
    no capacity for it, an unpicklable payload on a multi-process
    transport, or a drain that completes with unaccounted tasks.  These are
    bugs in the plane (or a misuse of its API), never recoverable wire
    noise — transfer corruption and loss are handled inline by resend and
    surface only in counters.
    """


class SolverError(ReproError):
    """A linear-programming solver failed or returned an infeasible status."""


class FaultError(ReproError):
    """A fault plan is malformed or inapplicable to the given platform.

    Raised for crashes of unknown nodes or of the root, probabilities
    outside ``[0, 1)``, degradation windows that never start, and similar
    problems — *before* any fault is injected, so a bad plan never produces
    a half-perturbed run.
    """
