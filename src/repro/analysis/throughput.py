"""Throughput measurement over simulation traces.

All functions work on the exact rational timestamps of a
:class:`~repro.sim.tracing.Trace`, so a simulation that reaches steady state
produces *exactly* the BW-First rate in every full late window — a property
the tests assert with equality.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Optional, Tuple

from ..sim.tracing import Trace


def measured_rate(trace: Trace, start, end) -> Fraction:
    """Tasks completed per time unit inside the window ``(start, end]``."""
    lo, hi = Fraction(start), Fraction(end)
    if hi <= lo:
        raise ValueError("empty measurement window")
    return Fraction(trace.completions_in(lo, hi)) / (hi - lo)


def window_rates(trace: Trace, period, until=None) -> List[Tuple[Fraction, Fraction]]:
    """Per-period throughput series: ``[(window_start, rate), …]``.

    Windows are consecutive intervals of length *period* starting at 0 and
    ending at *until* (default: the trace's end time, last partial window
    dropped).
    """
    p = Fraction(period)
    if p <= 0:
        raise ValueError("period must be positive")
    horizon = Fraction(until) if until is not None else trace.end_time
    series: List[Tuple[Fraction, Fraction]] = []
    start = Fraction(0)
    while start + p <= horizon:
        series.append((start, measured_rate(trace, start, start + p)))
        start += p
    return series


def steady_state_rate(
    trace: Trace,
    period,
    stop_time=None,
    settle_windows: int = 2,
) -> Optional[Fraction]:
    """The rate the trace settles into, or ``None`` if it never settles.

    Looks for the earliest window after which every *complete* window before
    *stop_time* (the supply cut) shows the same per-period rate, requiring at
    least *settle_windows* stable windows.
    """
    p = Fraction(period)
    horizon = Fraction(stop_time) if stop_time is not None else trace.end_time
    rates = [r for start, r in window_rates(trace, p, until=horizon)]
    if len(rates) < settle_windows:
        return None
    for i in range(len(rates) - settle_windows + 1):
        tail = rates[i:]
        if all(r == tail[0] for r in tail):
            return tail[0]
    return None


def per_node_rate(trace: Trace, node: Hashable, start, end) -> Fraction:
    """Tasks *node* completed per time unit inside ``(start, end]``."""
    lo, hi = Fraction(start), Fraction(end)
    count = sum(1 for t, n in trace.completions if n == node and lo < t <= hi)
    return Fraction(count) / (hi - lo)
