"""Start-up and wind-down phase analysis (Sections 7–8).

The paper's start-up strategy lets every node compute from the beginning;
Proposition 4 bounds the time for node ``P`` to enter steady state by the
sum of its ancestors' send periods.  These helpers measure the phases from a
simulation trace:

* :func:`startup_length` — the earliest time from which every complete
  steady-state period achieves the optimal per-period task count;
* :func:`startup_efficiency` — tasks computed during the start-up window as
  a fraction of the steady-state amount (the paper reports 80% for its
  example);
* wind-down is measured directly by
  :attr:`repro.sim.simulator.SimulationResult.wind_down`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..sim.simulator import SimulationResult
from ..sim.tracing import Trace


def startup_length(
    trace: Trace,
    period,
    expected_per_period: int,
    stop_time=None,
) -> Optional[Fraction]:
    """The measured start-up length, on the *period* grid.

    Scans consecutive windows of length *period* from time 0 and returns the
    start of the first window from which **every** later complete window
    (before *stop_time*) completes exactly *expected_per_period* tasks.
    Returns ``None`` when the trace never sustains the optimal rate.
    """
    p = Fraction(period)
    horizon = Fraction(stop_time) if stop_time is not None else trace.end_time
    counts = []
    start = Fraction(0)
    while start + p <= horizon:
        counts.append((start, trace.completions_in(start, start + p)))
        start += p
    if not counts:
        return None
    for i, (w_start, _) in enumerate(counts):
        if all(c == expected_per_period for _, c in counts[i:]):
            return w_start
    return None


def startup_efficiency(
    trace: Trace,
    window,
    optimal_rate,
) -> Fraction:
    """Fraction of the optimal throughput achieved during ``[0, window]``.

    The paper's example computes 32 tasks during a 40-unit start-up against
    an optimal 40 — an efficiency of 80%.
    """
    w = Fraction(window)
    if w <= 0:
        raise ValueError("window must be positive")
    expected = Fraction(optimal_rate) * w
    done = trace.completions_in(Fraction(0), w)
    return Fraction(done) / expected


def winddown_length(result: SimulationResult) -> Optional[Fraction]:
    """Time between the supply cut and the last completion (alias)."""
    return result.wind_down


def winddown_sweep(
    tree,
    allocation,
    policy,
    period,
    offsets: int = 12,
    settle_periods: int = 6,
):
    """Wind-down lengths when the supply stops at different phase offsets.

    The paper cuts the supply "at an arbitrary point in steady state" and
    reports one wind-down; this sweep cuts it at *offsets* evenly spaced
    points inside one steady period and returns the list of wind-down
    lengths, exposing the phase dependence the single sample hides.
    """
    from ..sim.simulator import simulate

    p = Fraction(period)
    results = []
    for k in range(offsets):
        stop = p * settle_periods + p * k / offsets
        run = simulate(tree, allocation=allocation, policy=policy,
                       horizon=stop)
        results.append(run.wind_down)
    return results


def node_steady_entry(
    trace: Trace,
    node,
    period,
    expected_per_period: int,
    stop_time=None,
) -> Optional[Fraction]:
    """When *node* enters its steady-state regime (Proposition 4's quantity).

    Same window scan as :func:`startup_length` but restricted to one node's
    completions.
    """
    p = Fraction(period)
    horizon = Fraction(stop_time) if stop_time is not None else trace.end_time
    counts = []
    start = Fraction(0)
    while start + p <= horizon:
        n = sum(1 for t, nd in trace.completions if nd == node and start < t <= start + p)
        counts.append((start, n))
        start += p
    for i, (w_start, _) in enumerate(counts):
        if all(c == expected_per_period for _, c in counts[i:]):
            return w_start
    return None
