"""Strict steady-state detection: exact periodicity of the execution trace.

"Steady state" in the paper is a flow balance (every node consumes what it
receives per period).  A *stronger* property actually holds for the
event-driven schedule: after the start-up transient, the whole execution
trace becomes **exactly periodic** — every busy segment of every resource
repeats shifted by the global period ``T``.  Exact rational timestamps make
this checkable with equality:

* :func:`segments_in_window` — a node-resource's busy pattern inside a
  window, normalised to window-relative times (segments are clipped at the
  window edges);
* :func:`is_periodic` — whether two consecutive windows of length ``T``
  carry identical patterns for every node;
* :func:`periodic_from` — the earliest window boundary from which the trace
  is periodic for good (the strict start-up length).

Used by the tests to prove the simulator truly cycles, and by
:mod:`repro.analysis.phases` consumers who want the strong notion.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Tuple

from ..sim.tracing import Trace

#: A normalised busy pattern: {(node, kind, peer): [(rel_start, rel_end), …]}
Pattern = Dict[Tuple[Hashable, str, Optional[Hashable]],
               List[Tuple[Fraction, Fraction]]]


def segments_in_window(trace: Trace, start, end) -> Pattern:
    """The busy pattern of every resource inside ``[start, end)``.

    Segments are clipped to the window and expressed relative to *start*,
    so two windows with identical activity produce equal patterns.
    """
    lo, hi = Fraction(start), Fraction(end)
    pattern: Pattern = {}
    for seg in trace.segments:
        clip_lo = max(seg.start, lo)
        clip_hi = min(seg.end, hi)
        if clip_hi <= clip_lo:
            continue
        key = (seg.node, seg.kind, seg.peer)
        pattern.setdefault(key, []).append((clip_lo - lo, clip_hi - lo))
    for intervals in pattern.values():
        intervals.sort()
        _merge(intervals)
    return pattern


def _merge(intervals: List[Tuple[Fraction, Fraction]]) -> None:
    """Coalesce touching intervals in place (already sorted)."""
    out = []
    for lo, hi in intervals:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    intervals[:] = out


def is_periodic(trace: Trace, period, at) -> bool:
    """Whether the windows ``[at, at+T)`` and ``[at+T, at+2T)`` match exactly."""
    t = Fraction(period)
    start = Fraction(at)
    first = segments_in_window(trace, start, start + t)
    second = segments_in_window(trace, start + t, start + 2 * t)
    return first == second


def periodic_from(trace: Trace, period, stop_time,
                  min_repeats: int = 2) -> Optional[Fraction]:
    """The earliest multiple of ``T`` from which the trace repeats forever.

    Checks window k against window k+1 for every k up to the last complete
    window before *stop_time*; requires at least *min_repeats* consecutive
    matches at the tail.  Returns ``None`` when the trace never becomes
    strictly periodic (e.g. a heuristic baseline).
    """
    t = Fraction(period)
    horizon = Fraction(stop_time)
    count = int((horizon / t))
    if count < min_repeats + 1:
        return None
    patterns = [
        segments_in_window(trace, k * t, (k + 1) * t) for k in range(count)
    ]
    for k in range(count - min_repeats):
        if all(patterns[j] == patterns[k] for j in range(k, count)):
            return k * t
    return None
