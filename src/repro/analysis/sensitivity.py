"""Bottleneck analysis: which resource is worth upgrading?

A platform operator holding a BW-First result wants to know where the next
dollar goes: a faster CPU somewhere, or a faster link?  Because throughput
is cheap to re-evaluate (that is the whole point of the depth-first
procedure, Section 5), sensitivity analysis is just a sweep: speed one
resource up by a factor, re-run BW-First, report the gain.  All arithmetic
stays exact.

* :func:`node_sensitivity` / :func:`edge_sensitivity` — throughput after
  speeding up one ``w`` or one ``c``;
* :func:`sensitivity_report` — every resource ranked by gain;
* :func:`bottlenecks` — the resources whose improvement actually helps
  (gain > 0); on a saturated platform most resources are *not* bottlenecks,
  which is itself the interesting output.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, List, Optional

from ..core.bwfirst import bw_first
from ..core.rates import as_cost
from ..exceptions import PlatformError
from ..platform.tree import Tree
from ..util.text import render_table


@dataclass(frozen=True)
class Sensitivity:
    """Effect of speeding up one resource by the given factor."""

    kind: str  # "node" or "edge"
    name: Hashable  # the node, or the child end of the edge
    factor: Fraction
    base: Fraction
    improved: Fraction

    @property
    def gain(self) -> Fraction:
        """Relative throughput gain (0 when the resource is not binding)."""
        if self.base == 0:
            return Fraction(0) if self.improved == 0 else Fraction(1)
        return self.improved / self.base - 1


def node_sensitivity(tree: Tree, node: Hashable, speedup=2) -> Sensitivity:
    """Throughput of *tree* with *node*'s CPU sped up by *speedup*."""
    factor = as_cost(speedup)
    if factor < 1:
        raise PlatformError("speedup factor must be ≥ 1")
    base = bw_first(tree).throughput
    if tree.is_switch(node):
        improved = base  # a switch has no CPU to upgrade
    else:
        from ..extensions.dynamic import perturb

        improved = bw_first(
            perturb(tree, node_factors={node: Fraction(1) / factor})
        ).throughput
    return Sensitivity(kind="node", name=node, factor=factor,
                       base=base, improved=improved)


def edge_sensitivity(tree: Tree, child: Hashable, speedup=2) -> Sensitivity:
    """Throughput of *tree* with *child*'s incoming link sped up."""
    factor = as_cost(speedup)
    if factor < 1:
        raise PlatformError("speedup factor must be ≥ 1")
    if tree.parent(child) is None:
        raise PlatformError("the root has no incoming link")
    from ..extensions.dynamic import perturb

    base = bw_first(tree).throughput
    improved = bw_first(
        perturb(tree, edge_factors={child: Fraction(1) / factor})
    ).throughput
    return Sensitivity(kind="edge", name=child, factor=factor,
                       base=base, improved=improved)


def _sweep_one(task) -> Sensitivity:
    """Worker for :func:`sensitivity_sweep` (top-level: picklable)."""
    tree, kind, name, speedup = task
    if kind == "node":
        return node_sensitivity(tree, name, speedup)
    return edge_sensitivity(tree, name, speedup)


def sensitivity_sweep(tree: Tree, speedup=2,
                      workers: int = 1) -> List[Sensitivity]:
    """Sensitivity of every CPU and every link, sorted by decreasing gain.

    Each evaluation is an independent exact BW-First run, so the sweep is
    embarrassingly parallel: pass ``workers > 1`` to spread it over
    processes (results are identical to the serial run).
    """
    from ..util.parallel import parallel_map

    tasks = []
    for node in tree.nodes():
        if not tree.is_switch(node):
            tasks.append((tree, "node", node, speedup))
        if tree.parent(node) is not None:
            tasks.append((tree, "edge", node, speedup))
    results = parallel_map(_sweep_one, tasks, workers=workers)
    results.sort(key=lambda s: (-s.gain, s.kind, str(s.name)))
    return results


def bottlenecks(tree: Tree, speedup=2) -> List[Sensitivity]:
    """Only the resources whose speedup increases throughput."""
    return [s for s in sensitivity_sweep(tree, speedup) if s.gain > 0]


def sensitivity_report(tree: Tree, speedup=2, top: Optional[int] = None) -> str:
    """Ranked text table of :func:`sensitivity_sweep` (all rows by default)."""
    rows = []
    sweep = sensitivity_sweep(tree, speedup)
    if top is not None:
        sweep = sweep[:top]
    for s in sweep:
        label = (f"CPU of {s.name}" if s.kind == "node"
                 else f"link to {s.name}")
        rows.append([
            label,
            f"{float(s.base):.4f}",
            f"{float(s.improved):.4f}",
            f"{float(s.gain):+.1%}",
        ])
    return render_table(
        [f"resource (x{as_cost(speedup)} speedup)", "base", "improved", "gain"],
        rows,
    )
