"""Strategy comparison harness.

Runs several scheduling strategies on one platform under identical supply
conditions and produces a ranked report of the metrics the paper argues
about: steady rate, early (start-up) work, buffering, wind-down, and — for
finite campaigns — makespan.  The SETI example and the E9/E10 benchmarks are
thin wrappers over this harness; it is also the natural entry point for a
user evaluating their own platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Mapping, Optional

from ..baselines import (
    simulate_demand_driven,
    simulate_greedy,
    simulate_synchronized,
)
from ..core.allocation import from_bw_first
from ..core.bwfirst import bw_first
from ..platform.tree import Tree
from ..schedule.periods import global_period, tree_periods
from ..sim.simulator import simulate
from ..util.text import render_table
from . import buffers, throughput

#: A strategy takes (tree, horizon, supply) and returns a result exposing
#: ``.trace``, ``.released``, ``.stop_time``, ``.end_time``, ``.wind_down``.
Strategy = Callable[..., object]

STRATEGIES: Dict[str, Strategy] = {
    "bandwidth-centric": lambda tree, **kw: simulate(tree, **kw),
    "synchronized": lambda tree, **kw: simulate_synchronized(tree, **kw),
    "demand-driven": lambda tree, **kw: simulate_demand_driven(tree, **kw),
    "demand-driven/interruptible": lambda tree, **kw: simulate_demand_driven(
        tree, interruptible=True, **kw
    ),
    "greedy": lambda tree, **kw: simulate_greedy(tree, **kw),
}


@dataclass(frozen=True)
class StrategyMetrics:
    """Measured behaviour of one strategy on one platform."""

    name: str
    steady_rate: Fraction
    optimal_rate: Fraction
    first_period_tasks: int
    peak_buffered: int
    avg_buffered: Fraction
    wind_down: Optional[Fraction]
    makespan: Optional[Fraction]

    @property
    def efficiency(self) -> Fraction:
        """Steady rate as a fraction of the optimum."""
        if self.optimal_rate == 0:
            return Fraction(0)
        return self.steady_rate / self.optimal_rate


def compare_strategies(
    tree: Tree,
    strategies: Optional[Mapping[str, Strategy]] = None,
    periods_count: int = 10,
    tail: int = 4,
    supply: Optional[int] = None,
) -> List[StrategyMetrics]:
    """Run every strategy on *tree* and measure it.

    With *supply* the run is a finite campaign (makespan measured); otherwise
    each strategy runs for ``periods_count`` global periods of the optimal
    schedule and steady metrics are taken over the last *tail* periods.
    Results are sorted best-first by steady rate, then by average buffering.
    """
    if strategies is None:
        strategies = STRATEGIES
    optimal = bw_first(tree).throughput
    allocation = from_bw_first(bw_first(tree))
    period = global_period(tree_periods(allocation))
    horizon = Fraction(period) * periods_count

    out: List[StrategyMetrics] = []
    for name, strategy in strategies.items():
        if supply is not None:
            run = strategy(tree, supply=supply)
            stop = run.stop_time if run.stop_time is not None else run.end_time
            window = (stop / 2, stop) if stop > 0 else (Fraction(0), Fraction(1))
            makespan = run.end_time
        else:
            run = strategy(tree, horizon=horizon)
            window = (Fraction(period) * (periods_count - tail), horizon)
            makespan = None
        rate = throughput.measured_rate(run.trace, *window)
        stats = buffers.steady_state_buffer_stats(run.trace, *window)
        out.append(StrategyMetrics(
            name=name,
            steady_rate=rate,
            optimal_rate=optimal,
            first_period_tasks=run.trace.completions_in(
                Fraction(0), Fraction(period)
            ),
            peak_buffered=stats["peak_total"],
            avg_buffered=stats["avg_total"],
            wind_down=run.wind_down,
            makespan=makespan,
        ))
    out.sort(key=lambda m: (-m.steady_rate, m.avg_buffered))
    return out


def comparison_table(metrics: List[StrategyMetrics]) -> str:
    """Render a comparison as an aligned text table (best strategy first)."""
    rows = []
    for m in metrics:
        rows.append([
            m.name,
            f"{float(m.steady_rate):.4f}",
            f"{float(m.efficiency):.1%}",
            str(m.first_period_tasks),
            str(m.peak_buffered),
            f"{float(m.avg_buffered):.2f}",
            "-" if m.wind_down is None else f"{float(m.wind_down):.1f}",
            "-" if m.makespan is None else f"{float(m.makespan):.1f}",
        ])
    return render_table(
        ["strategy", "steady rate", "vs optimal", "1st-period tasks",
         "peak buf", "avg buf", "wind-down", "makespan"],
        rows,
    )
