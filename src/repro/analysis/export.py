"""Exporting traces to CSV for external analysis tools.

Three flat tables, all with exact values rendered as fraction strings plus
float convenience columns:

* :func:`segments_csv` — one row per busy interval (node, kind, peer,
  start, end);
* :func:`completions_csv` — one row per computed task;
* :func:`buffer_csv` — the ±1 buffer deltas (reconstructable into step
  curves by a single cumulative sum per node).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from ..core.rates import format_fraction
from ..sim.tracing import Trace


def segments_csv(trace: Trace) -> str:
    """The busy segments as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["node", "kind", "peer", "start", "end",
                     "start_float", "end_float"])
    for seg in trace.segments:
        writer.writerow([
            seg.node, seg.kind,
            "" if seg.peer is None else seg.peer,
            format_fraction(seg.start), format_fraction(seg.end),
            float(seg.start), float(seg.end),
        ])
    return out.getvalue()


def completions_csv(trace: Trace) -> str:
    """The task completions as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", "time_float", "node"])
    for time, node in trace.completions:
        writer.writerow([format_fraction(time), float(time), node])
    return out.getvalue()


def buffer_csv(trace: Trace) -> str:
    """The buffer deltas as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", "time_float", "node", "delta"])
    for time, node, delta in trace.buffer_deltas:
        writer.writerow([format_fraction(time), float(time), node, delta])
    return out.getvalue()


def export_trace(trace: Trace, directory: Union[str, Path],
                 prefix: str = "trace") -> list:
    """Write all three CSVs into *directory*; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, producer in (("segments", segments_csv),
                           ("completions", completions_csv),
                           ("buffers", buffer_csv)):
        path = directory / f"{prefix}_{name}.csv"
        path.write_text(producer(trace))
        written.append(path)
    return written
