"""Dependency-free SVG rendering of Gantt charts and buffer curves.

The ASCII renderer (:mod:`repro.analysis.gantt`) is for terminals; this
module writes standalone ``.svg`` files for papers and docs, with no
external dependency — the SVG is assembled as text.

* :func:`gantt_svg` — the Figure-5 view: one row of lanes (receive /
  compute / send) per node, exact segment boundaries, send lanes coloured
  by destination child; control-plane jobs (``ctrl`` segments — the
  negotiation messages that steal the send port) share the send lane and
  are drawn hatched-red with a ``ctrl`` hover title;
* :func:`buffer_svg` — the total buffered-task step curve over time.

Colours are a fixed qualitative palette cycled over peers.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Optional, Sequence

from ..sim.tracing import COMPUTE, CTRL, RECV, SEND, Trace
from .buffers import total_occupancy_series

_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)
CTRL_FILL = "#d62728"  # control traffic: red, never used for a peer
_KIND_FILL = {COMPUTE: "#59a14f", RECV: "#bab0ac", SEND: "#4e79a7",
              CTRL: CTRL_FILL}
_LANES = (RECV, COMPUTE, SEND)


def _esc(text: object) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def gantt_svg(
    trace: Trace,
    nodes: Sequence[Hashable],
    start=0,
    end=None,
    width: int = 900,
    lane_height: int = 14,
    label_width: int = 70,
) -> str:
    """Render the busy segments of *nodes* over ``[start, end]`` as SVG."""
    lo = Fraction(start)
    hi = Fraction(end) if end is not None else trace.end_time
    if hi <= lo:
        raise ValueError("empty Gantt window")
    span = hi - lo
    scale = Fraction(width) / span

    peers: List[Hashable] = []
    for seg in trace.segments:
        if seg.kind == SEND and seg.peer is not None and seg.peer not in peers:
            peers.append(seg.peer)
    peer_fill = {p: _PALETTE[i % len(_PALETTE)] for i, p in enumerate(peers)}

    rows: List[str] = []
    y = 20
    for node in nodes:
        for kind in _LANES:
            lane_kinds = (SEND, CTRL) if kind == SEND else (kind,)
            segments = sorted(
                (s for k in lane_kinds for s in trace.segments_for(node, k)
                 if s.end > lo and s.start < hi),
                key=lambda s: (s.start, s.end),
            )
            if not segments:
                continue
            rows.append(
                f'<text x="2" y="{y + lane_height - 3}" font-size="10" '
                f'font-family="monospace">{_esc(node)} {kind[:1].upper()}</text>'
            )
            for seg in segments:
                x0 = float((max(seg.start, lo) - lo) * scale)
                x1 = float((min(seg.end, hi) - lo) * scale)
                if seg.kind == SEND and seg.peer in peer_fill:
                    fill = peer_fill[seg.peer]
                else:
                    fill = _KIND_FILL[seg.kind]
                title = f"{node} {seg.kind} [{seg.start}, {seg.end})"
                if seg.peer is not None:
                    title += f" peer={seg.peer}"
                rows.append(
                    f'<rect x="{label_width + x0:.2f}" y="{y}" '
                    f'width="{max(x1 - x0, 0.5):.2f}" height="{lane_height - 2}" '
                    f'fill="{fill}"><title>{_esc(title)}</title></rect>'
                )
            y += lane_height
        y += 6  # gap between nodes

    # time axis
    axis: List[str] = []
    ticks = 8
    for i in range(ticks + 1):
        t = lo + span * i / ticks
        x = label_width + float((t - lo) * scale)
        axis.append(
            f'<line x1="{x:.2f}" y1="14" x2="{x:.2f}" y2="{y}" '
            'stroke="#dddddd" stroke-width="1"/>'
        )
        label = str(t) if t.denominator == 1 else f"{float(t):.4g}"
        axis.append(
            f'<text x="{x:.2f}" y="11" font-size="9" text-anchor="middle" '
            f'font-family="monospace">{_esc(label)}</text>'
        )

    total_width = label_width + width + 10
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_width}" '
        f'height="{y + 10}" viewBox="0 0 {total_width} {y + 10}">\n'
        '<rect width="100%" height="100%" fill="white"/>\n'
        + "\n".join(axis) + "\n" + "\n".join(rows) + "\n</svg>\n"
    )


def buffer_svg(
    trace: Trace,
    start=0,
    end=None,
    width: int = 900,
    height: int = 200,
) -> str:
    """Render the total buffered-task step curve over ``[start, end]``."""
    lo = Fraction(start)
    hi = Fraction(end) if end is not None else trace.end_time
    if hi <= lo:
        raise ValueError("empty window")
    series = total_occupancy_series(trace)
    peak_level = max((level for _, level in series), default=0) or 1
    x_scale = Fraction(width) / (hi - lo)
    y_scale = Fraction(height - 30) / peak_level

    points: List[str] = []
    prev_level = 0
    for time, level in series:
        if time < lo:
            prev_level = level
            continue
        if time > hi:
            break
        x = float((time - lo) * x_scale)
        y_prev = height - 10 - float(prev_level * y_scale)
        y_new = height - 10 - float(level * y_scale)
        if not points:
            points.append(f"M 0 {height - 10 - float(prev_level * y_scale):.2f}")
        points.append(f"L {x:.2f} {y_prev:.2f} L {x:.2f} {y_new:.2f}")
        prev_level = level
    points.append(f"L {width} {height - 10 - float(prev_level * y_scale):.2f}")

    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width + 10}" '
        f'height="{height}" viewBox="0 0 {width + 10} {height}">\n'
        '<rect width="100%" height="100%" fill="white"/>\n'
        f'<text x="4" y="12" font-size="10" font-family="monospace">'
        f'buffered tasks (peak {peak_level})</text>\n'
        f'<path d="{" ".join(points)}" fill="none" stroke="#4e79a7" '
        'stroke-width="1.5"/>\n</svg>\n'
    )


def save_svg(svg: str, path) -> None:
    """Write an SVG document produced by the renderers to *path*."""
    from pathlib import Path

    Path(path).write_text(svg)
