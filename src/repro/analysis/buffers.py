"""Buffer-occupancy analysis (the Section 6.3 objective).

The paper's interleaved local schedule is designed to minimise the number of
tasks buffered at node locations during steady state.  These helpers
reconstruct per-node occupancy over time from the ±1 buffer deltas a
simulation records, and summarise peaks and time averages — the metrics the
E9/E10 experiments compare across scheduling policies.

A task counts as *buffered at a node* from the moment it fully arrives (or
is released, at the root) until it finishes computing locally or finishes
being forwarded to a child.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Tuple

from ..sim.tracing import Trace

#: A step function as ``[(time, new_level), …]`` sorted by time.
StepSeries = List[Tuple[Fraction, int]]


def occupancy_series(trace: Trace, node: Hashable) -> StepSeries:
    """The buffer level of *node* over time as a step series (starts at 0)."""
    series: StepSeries = [(Fraction(0), 0)]
    level = 0
    for time, n, delta in sorted(trace.buffer_deltas, key=lambda d: d[0]):
        if n != node:
            continue
        level += delta
        if series and series[-1][0] == time:
            series[-1] = (time, level)
        else:
            series.append((time, level))
    return series


def total_occupancy_series(trace: Trace) -> StepSeries:
    """Platform-wide buffered-task level over time."""
    series: StepSeries = [(Fraction(0), 0)]
    level = 0
    for time, _, delta in sorted(trace.buffer_deltas, key=lambda d: d[0]):
        level += delta
        if series and series[-1][0] == time:
            series[-1] = (time, level)
        else:
            series.append((time, level))
    return series


def peak(series: StepSeries, start=None, end=None) -> int:
    """Maximum level of *series* inside the optional ``[start, end]`` window."""
    lo = Fraction(start) if start is not None else None
    hi = Fraction(end) if end is not None else None
    best = 0
    current = 0
    for time, level in series:
        if hi is not None and time > hi:
            break
        current = level
        if lo is None or time >= lo:
            best = max(best, current)
    # a level set before the window persists into it
    if lo is not None:
        level_at_lo = 0
        for time, level in series:
            if time > lo:
                break
            level_at_lo = level
        best = max(best, level_at_lo)
    return best


def time_average(series: StepSeries, start, end) -> Fraction:
    """Time-averaged level of *series* over ``[start, end]``."""
    lo, hi = Fraction(start), Fraction(end)
    if hi <= lo:
        raise ValueError("empty averaging window")
    area = Fraction(0)
    prev_time = lo
    prev_level = 0
    for time, level in series:
        if time <= lo:
            prev_level = level
            continue
        t = min(time, hi)
        area += prev_level * (t - prev_time)
        prev_time = t
        prev_level = level
        if time >= hi:
            break
    if prev_time < hi:
        area += prev_level * (hi - prev_time)
    return area / (hi - lo)


def peak_per_node(trace: Trace, start=None, end=None) -> Dict[Hashable, int]:
    """Peak buffer occupancy of every node appearing in the trace."""
    nodes = {n for _, n, _ in trace.buffer_deltas}
    return {n: peak(occupancy_series(trace, n), start, end) for n in sorted(nodes, key=str)}


def prop3_buffer_bound(periods, root) -> Dict[Hashable, int]:
    """Proposition 3's sufficient per-node buffer: χ_in tasks.

    "The only requirement for ensuring steady-state with asynchronous
    activities is to dispose of enough tasks buffered at node locations …
    assume that χ_in tasks have been buffered during the start-up phase."
    Returns the bound for every non-root node; the measured steady-state
    peak occupancy of each node must stay within χ_in plus the tasks
    physically in flight on its ports (checked by the tests).
    """
    return {
        node: p.chi_in for node, p in periods.items()
        if node != root and p.chi_in > 0
    }


def taskplane_buffer_bounds(periods, root) -> Dict[Hashable, int]:
    """Per-node live-execution buffer capacity: χ_in plus in-flight slack.

    The task plane's credit protocol sizes each non-root node's inbound
    buffer from Proposition 3's χ_in (see :func:`prop3_buffer_bound`) plus
    two slots for the tasks physically in flight on the node's ports — one
    arriving on the receive port, one leaving on the send port — which the
    asynchronous steady state keeps occupied.  E30 asserts measured peak
    occupancy never exceeds this bound; the credit protocol makes exceeding
    it structurally impossible (a parent without credit cannot send), so a
    violation is a plane bug, not congestion.
    """
    return {
        node: p.chi_in + 2 for node, p in periods.items()
        if node != root and p.chi_in > 0
    }


def steady_state_buffer_stats(
    trace: Trace,
    start,
    end,
) -> Dict[str, object]:
    """Summary statistics over a steady-state window.

    Returns a dict with ``peak_total``, ``avg_total`` and ``peak_by_node`` —
    the numbers experiments E9/E10 report.
    """
    total = total_occupancy_series(trace)
    return {
        "peak_total": peak(total, start, end),
        "avg_total": time_average(total, start, end),
        "peak_by_node": peak_per_node(trace, start, end),
    }
