"""ASCII Gantt rendering of simulation traces (the paper's Figure 5).

Each node gets up to three lanes — R (receive), C (compute), S (send) —
sampled on a regular grid.  A cell shows the activity occupying the lane at
the *start* of its sampling interval (``#`` when busy, ``.`` when idle; the
S lane shows the first letter of the destination child when unambiguous).
Control-plane jobs (negotiation messages crossing the send port, recorded
as ``ctrl`` segments) share the S lane and render as ``*`` — they occupy
the same physical port as task transfers.

The rendering is deliberately terminal-friendly: the benchmark harness
prints it for the start-up window of the reconstructed example so the
reader can eyeball the pipeline filling up, exactly like Figure 5.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Optional, Sequence

from ..sim.tracing import COMPUTE, CTRL, RECV, SEND, Trace

_LANES = ((RECV, "R"), (COMPUTE, "C"), (SEND, "S"))

#: glyph for a control-plane job occupying the send port
CTRL_CELL = "*"


def render_gantt(
    trace: Trace,
    nodes: Sequence[Hashable],
    start=0,
    end=None,
    width: int = 80,
    label_peers: bool = False,
) -> str:
    """Render an ASCII Gantt chart of *nodes* over ``[start, end]``.

    *width* is the number of sampling cells.  With *label_peers* the send
    lane prints the first character of the receiving child instead of ``#``.
    Control segments always render as ``*`` in the send lane, so a port
    stolen by negotiation traffic is visibly different from a task send.
    """
    lo = Fraction(start)
    hi = Fraction(end) if end is not None else trace.end_time
    if hi <= lo:
        raise ValueError("empty Gantt window")
    if width < 1:
        raise ValueError("width must be positive")
    dt = (hi - lo) / width

    label_width = max((len(f"{node} {code}") for node in nodes for _, code in _LANES),
                      default=4)
    lines: List[str] = []
    header = " " * (label_width + 1) + _time_axis(lo, hi, width)
    lines.append(header)

    for node in nodes:
        for kind, code in _LANES:
            segments = trace.segments_for(node, kind)
            if kind == SEND:
                # control jobs occupy the same physical port: same lane
                segments = sorted(segments + trace.segments_for(node, CTRL),
                                  key=lambda s: (s.start, s.end))
            if not segments:
                continue
            cells = []
            for i in range(width):
                t = lo + i * dt
                seg = _segment_at(segments, t)
                if seg is None:
                    cells.append(".")
                elif seg.kind == CTRL:
                    cells.append(CTRL_CELL)
                elif label_peers and kind == SEND and seg.peer is not None:
                    cells.append(str(seg.peer)[-1])
                else:
                    cells.append("#")
            label = f"{node} {code}".ljust(label_width)
            lines.append(f"{label} {''.join(cells)}")
        lines.append("")
    return "\n".join(lines).rstrip()


def _segment_at(segments, t: Fraction):
    for seg in segments:
        if seg.start <= t < seg.end:
            return seg
    return None


def _time_axis(lo: Fraction, hi: Fraction, width: int) -> str:
    """A sparse time axis: tick labels every ~10 cells."""
    axis = [" "] * width
    step = max(width // 8, 1)
    span = hi - lo
    for i in range(0, width, step):
        t = lo + span * i / width
        label = _short(t)
        for j, ch in enumerate(label):
            if i + j < width:
                axis[i + j] = ch
    return "".join(axis)


def _short(t: Fraction) -> str:
    if t.denominator == 1:
        return str(t.numerator)
    return f"{float(t):.4g}"
