"""Trace analysis: throughput, buffers, phases, Gantt charts and reports."""

from .buffers import (
    occupancy_series,
    peak,
    peak_per_node,
    prop3_buffer_bound,
    steady_state_buffer_stats,
    time_average,
    total_occupancy_series,
)
from .export import buffer_csv, completions_csv, export_trace, segments_csv
from .periodicity import is_periodic, periodic_from, segments_in_window
from .svg import buffer_svg, gantt_svg, save_svg
from .sensitivity import (
    Sensitivity,
    bottlenecks,
    edge_sensitivity,
    node_sensitivity,
    sensitivity_report,
    sensitivity_sweep,
)
from .gantt import render_gantt
from .phases import (
    node_steady_entry,
    startup_efficiency,
    startup_length,
    winddown_length,
)
from .compare import (
    STRATEGIES,
    StrategyMetrics,
    compare_strategies,
    comparison_table,
)
from .report import (
    rootless_period,
    simulation_metrics,
    simulation_report,
    utilization_report,
    workers_rate,
)
from .throughput import measured_rate, per_node_rate, steady_state_rate, window_rates

__all__ = [
    "Sensitivity",
    "node_sensitivity",
    "edge_sensitivity",
    "sensitivity_sweep",
    "sensitivity_report",
    "bottlenecks",
    "prop3_buffer_bound",
    "is_periodic",
    "periodic_from",
    "segments_in_window",
    "STRATEGIES",
    "StrategyMetrics",
    "compare_strategies",
    "comparison_table",
    "occupancy_series",
    "total_occupancy_series",
    "peak",
    "peak_per_node",
    "time_average",
    "steady_state_buffer_stats",
    "render_gantt",
    "startup_length",
    "startup_efficiency",
    "winddown_length",
    "node_steady_entry",
    "simulation_metrics",
    "simulation_report",
    "workers_rate",
    "rootless_period",
    "utilization_report",
    "segments_csv",
    "completions_csv",
    "buffer_csv",
    "export_trace",
    "gantt_svg",
    "buffer_svg",
    "save_svg",
    "measured_rate",
    "window_rates",
    "steady_state_rate",
    "per_node_rate",
]
