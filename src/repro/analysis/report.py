"""Experiment reports: the tables the benchmark harness prints.

:func:`simulation_report` condenses one simulation run into the numbers the
paper's Section 8 narrates — optimal vs measured steady-state rate, start-up
length and efficiency, wind-down length, buffer peaks — and renders them as
an aligned table.  The benchmarks print these reports so the EXPERIMENTS.md
paper-vs-measured entries can be regenerated from scratch.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from ..core.rates import format_fraction
from ..schedule.periods import global_period
from ..sim.simulator import SimulationResult
from ..util.text import render_table
from . import buffers, phases, throughput


def workers_rate(allocation) -> Fraction:
    """The *rootless tree*'s throughput: tasks/unit computed by non-roots.

    Section 8 phrases its start-up and wind-down claims against the
    "rootless tree" — the platform without the master.
    """
    root = allocation.tree.root
    return sum(
        (alpha for node, alpha in allocation.alpha.items() if node != root),
        Fraction(0),
    )


def rootless_period(periods, tree) -> int:
    """The steady-state period of the rootless tree (lcm over non-roots)."""
    from ..core.rates import lcm_ints

    return lcm_ints(
        p.t_full for node, p in periods.items() if node != tree.root
    )


def utilization_report(result: SimulationResult, start, end) -> str:
    """Per-node resource utilisation over ``[start, end]``.

    CPU, send-port and receive-port busy fractions from the trace — the
    operational view of where the platform's capacity goes.
    """
    from ..sim.tracing import COMPUTE, RECV, SEND

    lo, hi = Fraction(start), Fraction(end)
    if hi <= lo:
        raise ValueError("empty utilisation window")
    span = hi - lo
    rows = []
    for node in result.tree.nodes():
        if node not in result.schedules:
            continue
        cells = [str(node)]
        for kind in (COMPUTE, SEND, RECV):
            busy = result.trace.busy_time(node, kind, lo, hi)
            cells.append(f"{float(busy / span):.1%}")
        rows.append(cells)
    return render_table(["node", "cpu", "send port", "recv port"], rows)


def simulation_metrics(
    result: SimulationResult,
    optimal_rate: Fraction,
    period: Optional[int] = None,
) -> Dict[str, object]:
    """Compute the standard metric set for one run.

    *period* defaults to the global (whole-tree) period.  Steady-state
    metrics are measured on the period grid; start-up efficiency uses the
    first period as its window, mirroring the paper's "during the start-up
    phase, the rootless tree executes 80% of its optimal throughput".
    """
    if period is None:
        period = global_period(result.periods)
    p = Fraction(period)
    expected = optimal_rate * p
    if expected.denominator != 1:
        raise ValueError(f"period {period} is not a multiple of the steady period")
    trace = result.trace

    startup = phases.startup_length(trace, p, int(expected), stop_time=result.stop_time)
    rate = throughput.steady_state_rate(trace, p, stop_time=result.stop_time)
    efficiency = phases.startup_efficiency(trace, p, optimal_rate)
    stop = result.stop_time if result.stop_time is not None else trace.end_time
    window_start = stop - p if stop >= p else Fraction(0)
    buffer_stats = buffers.steady_state_buffer_stats(trace, window_start, stop)
    return {
        "period": period,
        "optimal_rate": optimal_rate,
        "measured_rate": rate,
        "startup_length": startup,
        "startup_efficiency": efficiency,
        "wind_down": result.wind_down,
        "released": result.released,
        "completed": trace.completed,
        "peak_buffer_total": buffer_stats["peak_total"],
        "avg_buffer_total": buffer_stats["avg_total"],
        "peak_buffer_by_node": buffer_stats["peak_by_node"],
    }


def simulation_report(result: SimulationResult, optimal_rate: Fraction,
                      period: Optional[int] = None, title: str = "") -> str:
    """Render :func:`simulation_metrics` as an aligned text table."""
    metrics = simulation_metrics(result, optimal_rate, period)
    rows = []

    def add(name: str, value) -> None:
        if value is None:
            rows.append([name, "-"])
        elif isinstance(value, Fraction):
            text = format_fraction(value)
            if value.denominator != 1:
                text += f" ({float(value):.4f})"
            rows.append([name, text])
        else:
            rows.append([name, str(value)])

    add("steady period T", metrics["period"])
    add("optimal rate (tasks/unit)", metrics["optimal_rate"])
    add("measured steady rate", metrics["measured_rate"])
    add("start-up length", metrics["startup_length"])
    add("start-up efficiency", metrics["startup_efficiency"])
    add("wind-down length", metrics["wind_down"])
    add("tasks released", metrics["released"])
    add("tasks completed", metrics["completed"])
    add("peak buffered (total)", metrics["peak_buffer_total"])
    add("avg buffered (steady)", metrics["avg_buffer_total"])

    table = render_table(["metric", "value"], rows)
    return f"{title}\n{table}" if title else table
