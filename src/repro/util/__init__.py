"""Small shared utilities (text tables, etc.)."""

from .text import render_table

__all__ = ["render_table"]
