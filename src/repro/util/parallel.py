"""Process-parallel sweeps for embarrassingly parallel evaluations.

Several workflows in this library are sweeps of *independent* exact
computations — sensitivity analysis re-runs BW-First once per resource,
overlay search runs independent restarts, benchmark harnesses scan seeds.
These parallelise perfectly across processes (the GIL rules threads out for
pure-Python `Fraction` work).

:func:`parallel_map` is a thin, dependable wrapper over
:class:`concurrent.futures.ProcessPoolExecutor`:

* **order-preserving** — results come back in input order, so parallel and
  serial runs are interchangeable (the tests assert equality);
* **deterministic** — it adds no scheduling-dependent behaviour; callables
  must already take their seeds explicitly;
* **graceful fallback** — ``workers=0``/``1`` (or an unpicklable callable
  on platforms without ``fork``) runs serially, so library code can expose
  a ``parallel=`` flag without platform worries.

Top-level functions (picklable) are required for multi-process execution;
lambdas only work in serial mode.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across processes.

    *workers* ``None`` uses :func:`default_workers`; ``0`` or ``1`` runs
    serially in-process (no pickling requirements).  Exceptions raised by
    *fn* propagate to the caller either way.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
