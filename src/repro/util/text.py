"""Plain-text table rendering shared by the report modules."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned, two-space-separated text table with a rule line."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
