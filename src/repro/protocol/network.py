"""Message transport for the distributed BW-First protocol.

Delivers messages between actors over the tree's links with a configurable
latency model, counting messages and bytes.  The default latency of a
control message crossing the ``parent↔child`` link is
``latency_factor × c`` — control messages are tiny compared to task files,
so the factor is small (default 1%); a constant per-hop latency can be added
for WAN-style modelling.

Built on the shared deterministic :class:`~repro.sim.engine.Engine`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Hashable, Optional, Tuple

from ..core.rates import ZERO, as_fraction
from ..exceptions import ProtocolError
from ..platform.tree import Tree
from ..sim.engine import Engine
from .messages import Message, wire_size


class Network:
    """Latency-modelled point-to-point transport over a tree's links."""

    def __init__(
        self,
        tree: Tree,
        latency_factor=Fraction(1, 100),
        fixed_latency=0,
    ):
        self.tree = tree
        self.latency_factor = as_fraction(latency_factor)
        self.fixed_latency = as_fraction(fixed_latency)
        self.engine = Engine()
        self._handlers: Dict[Hashable, Callable[[Message], None]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def register(self, node: Hashable, handler: Callable[[Message], None]) -> None:
        """Attach *node*'s message handler (its actor's ``handle``)."""
        self._handlers[node] = handler

    def link_latency(self, a: Hashable, b: Hashable) -> Fraction:
        """Control-message latency between adjacent nodes *a* and *b*.

        Endpoints outside the tree (the virtual parent seeding the root) are
        local: latency zero.
        """
        if a not in self.tree or b not in self.tree:
            return ZERO
        if self.tree.parent(b) == a:
            cost = self.tree.edge_cost(a, b)
        elif self.tree.parent(a) == b:
            cost = self.tree.edge_cost(b, a)
        else:
            raise ProtocolError(f"{a!r} and {b!r} are not adjacent")
        return cost * self.latency_factor + self.fixed_latency

    def send(self, message: Message) -> None:
        """Queue *message* for delivery after the link latency."""
        receiver = message.receiver
        if receiver not in self._handlers:
            raise ProtocolError(f"no handler registered for {receiver!r}")
        self.messages_sent += 1
        self.bytes_sent += wire_size(message)
        latency = self.link_latency(message.sender, message.receiver)
        handler = self._handlers[receiver]
        self.engine.schedule_in(latency, lambda: handler(message))

    def run(self, max_events: Optional[int] = None) -> Fraction:
        """Drain the event queue; return the completion time."""
        self.engine.run_all(max_events=max_events)
        return self.engine.now
