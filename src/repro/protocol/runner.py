"""Running the distributed BW-First protocol end to end.

:func:`run_protocol` instantiates one :class:`~repro.protocol.actor.NodeActor`
per platform node, wires them through a latency-modelled
:class:`~repro.protocol.network.Network`, seeds the root with the virtual
parent's proposal ``t_max``, and drains the event queue.  The result carries

* the negotiated throughput (exactly the centralised
  :func:`~repro.core.bwfirst.bw_first` value — asserted when *verify* is on),
* the number of control messages and bytes exchanged,
* the protocol's wall-clock completion time under the latency model —
  the quantity Section 5 argues is negligible against task communication
  times, measured by experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..core.bwfirst import bw_first, root_proposal
from ..exceptions import ProtocolError
from ..platform.tree import Tree
from .actor import DONE, NodeActor
from .messages import Acknowledgment, Message, Proposal
from .network import Network

#: Name of the virtual parent that seeds the root (never a real node).
VIRTUAL_PARENT = "__virtual_parent__"


def _prune(tree: Tree, failed: frozenset) -> Tree:
    """The surviving platform: *tree* minus every failed node's subtree."""
    out = Tree(tree.root, tree.w(tree.root))
    for node in tree.nodes():
        if node == tree.root or node in failed:
            continue
        parent = tree.parent(node)
        if parent not in out:  # an ancestor was failed
            continue
        out.add_node(node, tree.w(node), parent=parent, c=tree.c(node))
    return out


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one distributed BW-First negotiation."""

    tree: Tree
    throughput: Fraction
    t_max: Fraction
    completion_time: Fraction
    messages: int
    bytes: int
    actors: Dict[Hashable, NodeActor]

    @property
    def visited(self) -> frozenset:
        """Nodes that took part in the negotiation."""
        return frozenset(
            name for name, actor in self.actors.items() if actor.lam is not None
        )


def run_protocol(
    tree: Tree,
    latency_factor=Fraction(1, 100),
    fixed_latency=0,
    proposal: Optional[Fraction] = None,
    verify: bool = True,
    failed: frozenset = frozenset(),
    ack_timeout: Optional[Fraction] = None,
) -> ProtocolResult:
    """Execute BW-First as a distributed message-passing protocol.

    With *verify* (default) the negotiated throughput is checked against the
    centralised implementation; a mismatch raises
    :class:`~repro.exceptions.ProtocolError` (it would indicate a bug in the
    actor state machine, since Proposition 2 guarantees equality).

    *failed* names dead nodes: they silently swallow every message.  Parents
    handle them through ack timeouts: if a proposal's acknowledgment has not
    arrived in time, the parent closes the transaction as "child consumed
    nothing" and moves on, so the negotiation terminates on the **surviving
    platform** and (as the tests prove) yields exactly the BW-First
    throughput of the tree with the dead subtrees pruned.

    Timeouts are **hierarchical**: the timer for a proposal to child ``X``
    must outlast X's entire sub-negotiation, including X's own timeouts for
    its dead descendants, so each edge gets the recursive budget
    ``B(X) = 2·latency(X) + Σ_children B(Y) + slack``.  *ack_timeout*
    overrides the slack (the ``+1`` per edge) when given.
    """
    if VIRTUAL_PARENT in tree:
        raise ProtocolError(f"{VIRTUAL_PARENT!r} is reserved")
    if tree.root in failed:
        raise ProtocolError("the root cannot be failed: nothing can negotiate")
    network = Network(tree, latency_factor=latency_factor,
                      fixed_latency=fixed_latency)

    budgets: Dict[Hashable, Fraction] = {}
    if failed:
        slack = Fraction(ack_timeout) if ack_timeout is not None else Fraction(1)
        for node in reversed(list(tree.nodes())):  # children before parents
            parent = tree.parent(node)
            if parent is None:
                continue
            budgets[node] = (
                2 * network.link_latency(parent, node)
                + sum((budgets[ch] for ch in tree.children(node)), Fraction(0))
                + slack
            )

    actors: Dict[Hashable, NodeActor] = {}

    def make_send(sender: Hashable):
        if not budgets:
            return network.send

        def send_with_timer(message: Message) -> None:
            network.send(message)
            if isinstance(message, Proposal) and message.receiver in budgets:
                network.engine.schedule_in(
                    budgets[message.receiver],
                    lambda: actors[sender].on_timeout(message.receiver),
                )

        return send_with_timer

    for node in tree.nodes():
        parent = tree.parent(node)
        children = [
            (child, tree.c(child)) for child in tree.children_by_bandwidth(node)
        ]
        actors[node] = NodeActor(
            name=node,
            rate=tree.rate(node),
            parent=parent if parent is not None else VIRTUAL_PARENT,
            children=children,
            send=make_send(node),
        )
        if node in failed:
            network.register(node, lambda message: None)  # a dead node
        else:
            network.register(node, actors[node].handle)

    final: Dict[str, Fraction] = {}

    def virtual_handler(message: Message) -> None:
        if not isinstance(message, Acknowledgment):
            raise ProtocolError("virtual parent expected an acknowledgment")
        final["theta"] = message.theta

    network.register(VIRTUAL_PARENT, virtual_handler)

    lam = root_proposal(tree) if proposal is None else proposal
    network.send(Proposal(sender=VIRTUAL_PARENT, receiver=tree.root, beta=lam))
    completion = network.run(max_events=40 * len(tree) + 200)

    if "theta" not in final:
        raise ProtocolError("the protocol did not terminate with a root ack")
    throughput = lam - final["theta"]

    if verify:
        reference_tree = _prune(tree, failed) if failed else tree
        reference = bw_first(reference_tree, proposal=proposal)
        if reference.throughput != throughput:
            raise ProtocolError(
                f"distributed protocol negotiated {throughput}, centralised "
                f"BW-First computes {reference.throughput}"
            )
        if not failed:
            for node, outcome in reference.outcomes.items():
                actor = actors[node]
                if actor.lam != outcome.lam or (
                    actor.state == DONE and actor.theta != outcome.theta
                ):
                    raise ProtocolError(
                        f"actor {node!r} diverged from Algorithm 1"
                    )

    return ProtocolResult(
        tree=tree,
        throughput=throughput,
        t_max=lam,
        completion_time=completion,
        messages=network.messages_sent,
        bytes=network.bytes_sent,
        actors=actors,
    )
