"""Running the distributed BW-First protocol end to end.

:func:`run_protocol` instantiates one :class:`~repro.protocol.actor.NodeActor`
per platform node, wires them through a latency-modelled
:class:`~repro.protocol.network.Network`, seeds the root with the virtual
parent's proposal ``t_max``, and drains the event queue.  The result carries

* the negotiated throughput (exactly the centralised
  :func:`~repro.core.bwfirst.bw_first` value — asserted when *verify* is on),
* the number of control messages and bytes exchanged,
* the protocol's wall-clock completion time under the latency model —
  the quantity Section 5 argues is negligible against task communication
  times, measured by experiment E8.

Fault tolerance comes in two layers:

* *failed* declares fail-stop nodes that silently swallow every message;
  parents detect them by ack timeout and negotiate on the surviving tree;
* *retry* (a :class:`~repro.protocol.retry.RetryPolicy`) turns the timeout
  into at-least-once retransmission, so the negotiation also survives a
  **lossy control plane** — dropped or duplicated Proposals and
  Acknowledgments, e.g. injected by
  :class:`~repro.faults.inject.FaultyNetwork` passed as *network*.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..core.bwfirst import bw_first, root_proposal
from ..exceptions import ProtocolError, SimulationError
from ..platform.tree import Tree
from .actor import DONE, NodeActor
from .messages import Acknowledgment, Message, Proposal
from .network import Network
from .retry import RetryPolicy

#: Name of the virtual parent that seeds the root (never a real node).
VIRTUAL_PARENT = "__virtual_parent__"


def _prune(tree: Tree, failed: frozenset) -> Tree:
    """The surviving platform (kept as an alias of the public API)."""
    return tree.without_subtrees(n for n in failed if n in tree)


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one distributed BW-First negotiation."""

    tree: Tree
    throughput: Fraction
    t_max: Fraction
    completion_time: Fraction
    messages: int
    bytes: int
    actors: Dict[Hashable, NodeActor]
    retransmissions: int = 0
    dropped: int = 0
    duplicated: int = 0

    @property
    def visited(self) -> frozenset:
        """Nodes that took part in the negotiation."""
        return frozenset(
            name for name, actor in self.actors.items() if actor.lam is not None
        )


def run_protocol(
    tree: Tree,
    latency_factor=Fraction(1, 100),
    fixed_latency=0,
    proposal: Optional[Fraction] = None,
    verify: bool = True,
    failed: frozenset = frozenset(),
    ack_timeout: Optional[Fraction] = None,
    retry: Optional[RetryPolicy] = None,
    network: Optional[Network] = None,
) -> ProtocolResult:
    """Execute BW-First as a distributed message-passing protocol.

    With *verify* (default) the negotiated throughput is checked against the
    centralised implementation; a mismatch raises
    :class:`~repro.exceptions.ProtocolError` (it would indicate a bug in the
    actor state machine, since Proposition 2 guarantees equality).

    *failed* names dead nodes: they silently swallow every message.  Parents
    handle them through ack timeouts: if a proposal's acknowledgment has not
    arrived in time, the parent closes the transaction as "child consumed
    nothing" and moves on, so the negotiation terminates on the **surviving
    platform** and (as the tests prove) yields exactly the BW-First
    throughput of the tree with the dead subtrees pruned.

    Timeouts are **hierarchical**: the timer for a proposal to child ``X``
    must outlast X's entire sub-negotiation, including X's own timeouts for
    its dead descendants, so each edge gets the recursive budget
    ``B(X) = 2·latency(X) + Σ_children B(Y) + slack``.  *ack_timeout*
    overrides the slack (the ``+1`` per edge) when given.

    *retry* arms the same timers but retransmits the proposal (same β, same
    transaction id, timeout multiplied by the policy's backoff) before
    giving up, making the negotiation robust to message loss.  *network*
    substitutes the transport — pass a
    :class:`~repro.faults.inject.FaultyNetwork` to negotiate over a lossy
    control plane.
    """
    if VIRTUAL_PARENT in tree:
        raise ProtocolError(f"{VIRTUAL_PARENT!r} is reserved")
    if tree.root in failed:
        raise ProtocolError("the root cannot be failed: nothing can negotiate")
    if network is None:
        network = Network(tree, latency_factor=latency_factor,
                          fixed_latency=fixed_latency)
    elif network.tree is not tree and set(network.tree.nodes()) != set(tree.nodes()):
        raise ProtocolError("the supplied network transports a different tree")

    budgets: Dict[Hashable, Fraction] = {}
    if failed or retry is not None:
        slack = (Fraction(ack_timeout) if ack_timeout is not None
                 else (retry.slack if retry is not None else Fraction(1)))
        for node in reversed(list(tree.nodes())):  # children before parents
            parent = tree.parent(node)
            if parent is None:
                continue
            budgets[node] = (
                2 * network.link_latency(parent, node)
                + sum((budgets[ch] for ch in tree.children(node)), Fraction(0))
                + slack
            )

    actors: Dict[Hashable, NodeActor] = {}
    policy = retry if retry is not None else RetryPolicy(max_retries=0)
    attempts: Dict[tuple, int] = {}  # (sender, child, xid) → transmissions
    retransmissions = [0]

    def make_send(sender: Hashable):
        if not budgets:
            return network.send

        def send_with_timer(message: Message) -> None:
            network.send(message)
            if not isinstance(message, Proposal) or message.receiver not in budgets:
                return
            child, xid = message.receiver, message.xid
            key = (sender, child, xid)
            attempt = attempts.get(key, 0)
            attempts[key] = attempt + 1

            def fire() -> None:
                actor = actors[sender]
                if not actor.is_pending(child, xid):
                    return  # answered (or superseded) in the meantime
                if attempts[key] <= policy.max_retries:
                    retransmissions[0] += 1
                    actor.resend_pending()  # re-enters send_with_timer
                else:
                    actor.on_timeout(child, xid)

            network.engine.schedule_in(policy.timeout(budgets[child], attempt), fire)

        return send_with_timer

    for node in tree.nodes():
        parent = tree.parent(node)
        children = [
            (child, tree.c(child)) for child in tree.children_by_bandwidth(node)
        ]
        actors[node] = NodeActor(
            name=node,
            rate=tree.rate(node),
            parent=parent if parent is not None else VIRTUAL_PARENT,
            children=children,
            send=make_send(node),
        )
        if node in failed:
            network.register(node, lambda message: None)  # a dead node
        else:
            network.register(node, actors[node].handle)

    final: Dict[str, Fraction] = {}

    def virtual_handler(message: Message) -> None:
        if not isinstance(message, Acknowledgment):
            raise ProtocolError("virtual parent expected an acknowledgment")
        final["theta"] = message.theta

    network.register(VIRTUAL_PARENT, virtual_handler)

    lam = root_proposal(tree) if proposal is None else proposal
    network.send(Proposal(sender=VIRTUAL_PARENT, receiver=tree.root, beta=lam,
                          xid=0))
    max_events = 40 * len(tree) + 200
    if retry is not None:
        # every transaction may be retransmitted and every copy duplicated
        max_events *= 2 * (policy.max_retries + 1)
    try:
        completion = network.run(max_events=max_events)
    except SimulationError as exc:
        raise ProtocolError(
            f"negotiation exceeded {max_events} events — likely a retry loop "
            "(drop rate too high for the retry budget, or timeouts shorter "
            "than the sub-negotiations they guard)",
            time=network.engine.now,
        ) from exc

    if "theta" not in final:
        raise ProtocolError(
            "the protocol did not terminate with a root ack",
            node=tree.root,
            time=network.engine.now,
            pending=actors[tree.root]._pending,
        )
    throughput = lam - final["theta"]

    if verify:
        reference_tree = _prune(tree, failed) if failed else tree
        reference = bw_first(reference_tree, proposal=proposal)
        if reference.throughput != throughput:
            raise ProtocolError(
                f"distributed protocol negotiated {throughput}, centralised "
                f"BW-First computes {reference.throughput}"
            )
        if not failed:
            for node, outcome in reference.outcomes.items():
                actor = actors[node]
                if actor.lam != outcome.lam or (
                    actor.state == DONE and actor.theta != outcome.theta
                ):
                    raise ProtocolError(
                        f"actor {node!r} diverged from Algorithm 1", node=node
                    )

    return ProtocolResult(
        tree=tree,
        throughput=throughput,
        t_max=lam,
        completion_time=completion,
        messages=network.messages_sent,
        bytes=network.bytes_sent,
        actors=actors,
        retransmissions=retransmissions[0],
        dropped=getattr(network, "dropped", 0),
        duplicated=getattr(network, "duplicated", 0),
    )
