"""Running the distributed BW-First protocol end to end.

:func:`run_protocol` instantiates one :class:`~repro.protocol.actor.NodeActor`
per platform node, wires them through a latency-modelled
:class:`~repro.protocol.network.Network`, seeds the root with the virtual
parent's proposal ``t_max``, and drains the event queue.  The result carries

* the negotiated throughput (exactly the centralised
  :func:`~repro.core.bwfirst.bw_first` value — asserted when *verify* is on),
* the number of control messages and bytes exchanged,
* the protocol's wall-clock completion time under the latency model —
  the quantity Section 5 argues is negligible against task communication
  times, measured by experiment E8.

All of those tallies live as counters in a per-result telemetry
:class:`~repro.telemetry.core.Registry` (``result.telemetry``); the
``messages`` / ``bytes`` / ``completion_time`` attributes are thin views
over it.  Passing ``telemetry=`` additionally records every
Proposal→Acknowledgment **transaction as a span**: the span's owner is the
proposed-to child, its parent is the transaction that activated the
proposer, and its tags carry β, θ, the transaction id, retransmission
counts and the outcome (``acked`` or ``timeout``).  The span tree of a
negotiation is therefore exactly the set of visited nodes (experiment E6)
and its size exactly the transaction count — the paper's procedural
efficiency claims, made inspectable.

Fault tolerance comes in two layers:

* *failed* declares fail-stop nodes that silently swallow every message;
  parents detect them by ack timeout and negotiate on the surviving tree;
* *retry* (a :class:`~repro.protocol.retry.RetryPolicy`) turns the timeout
  into at-least-once retransmission, so the negotiation also survives a
  **lossy control plane** — dropped or duplicated Proposals and
  Acknowledgments, e.g. injected by
  :class:`~repro.faults.inject.FaultyNetwork` passed as *network*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..core.bwfirst import BWFirstResult, bw_first, root_proposal
from ..exceptions import ProtocolError, SimulationError
from ..platform.tree import Tree
from ..telemetry.core import Registry, Span
from .actor import DONE, NodeActor
from .messages import Acknowledgment, Message, Proposal
from .network import Network
from .retry import RetryPolicy

#: Name of the virtual parent that seeds the root (never a real node).
VIRTUAL_PARENT = "__virtual_parent__"


def _prune(tree: Tree, failed: frozenset) -> Tree:
    """The surviving platform (kept as an alias of the public API)."""
    return tree.without_subtrees(n for n in failed if n in tree)


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one distributed BW-First negotiation.

    The run's tallies are telemetry counters in ``telemetry`` (a per-result
    :class:`~repro.telemetry.core.Registry`); the historical attributes
    below read from it, so existing callers and benchmarks keep working.
    """

    tree: Tree
    throughput: Fraction
    t_max: Fraction
    actors: Dict[Hashable, NodeActor]
    telemetry: Registry = field(default_factory=Registry, repr=False)
    #: distributed-trace id of this negotiation (None when untraced)
    trace_id: Optional[str] = None

    @property
    def completion_time(self) -> Fraction:
        """Protocol wall-clock under the latency model."""
        return self.telemetry.value("protocol.completion_time")

    @property
    def messages(self) -> int:
        """Control messages transmitted (retransmissions included)."""
        return self.telemetry.value("protocol.messages")

    @property
    def bytes(self) -> int:
        """Control bytes transmitted."""
        return self.telemetry.value("protocol.bytes")

    @property
    def retransmissions(self) -> int:
        """Proposals retransmitted by retry timers."""
        return self.telemetry.value("protocol.retransmissions")

    @property
    def timeouts(self) -> int:
        """Transactions closed by giving up on a silent child."""
        return self.telemetry.value("protocol.timeouts")

    @property
    def dropped(self) -> int:
        """Control messages destroyed by the (faulty) transport."""
        return self.telemetry.value("protocol.dropped")

    @property
    def duplicated(self) -> int:
        """Control messages duplicated by the (faulty) transport."""
        return self.telemetry.value("protocol.duplicated")

    @property
    def transactions(self) -> int:
        """Completed transactions, the virtual parent's included."""
        return self.telemetry.value("protocol.transactions")

    @property
    def visited(self) -> frozenset:
        """Nodes that took part in the negotiation."""
        return frozenset(
            name for name, actor in self.actors.items() if actor.lam is not None
        )


def run_protocol(
    tree: Tree,
    latency_factor=Fraction(1, 100),
    fixed_latency=0,
    proposal: Optional[Fraction] = None,
    verify: bool = True,
    failed: frozenset = frozenset(),
    ack_timeout: Optional[Fraction] = None,
    retry: Optional[RetryPolicy] = None,
    network: Optional[Network] = None,
    telemetry: Optional[Registry] = None,
    span_parent: Optional[Span] = None,
    reference: Optional[BWFirstResult] = None,
    trace_id: Optional[str] = None,
) -> ProtocolResult:
    """Execute BW-First as a distributed message-passing protocol.

    With *verify* (default) the negotiated throughput is checked against the
    centralised implementation; a mismatch raises
    :class:`~repro.exceptions.ProtocolError` (it would indicate a bug in the
    actor state machine, since Proposition 2 guarantees equality).

    *failed* names dead nodes: they silently swallow every message.  Parents
    handle them through ack timeouts: if a proposal's acknowledgment has not
    arrived in time, the parent closes the transaction as "child consumed
    nothing" and moves on, so the negotiation terminates on the **surviving
    platform** and (as the tests prove) yields exactly the BW-First
    throughput of the tree with the dead subtrees pruned.

    Timeouts are **hierarchical**: the timer for a proposal to child ``X``
    must outlast X's entire sub-negotiation, including X's own timeouts for
    its dead descendants, so each edge gets the recursive budget
    ``B(X) = 2·latency(X) + Σ_children B(Y) + slack``.  *ack_timeout*
    overrides the slack (the ``+1`` per edge) when given.

    *retry* arms the same timers but retransmits the proposal (same β, same
    transaction id, timeout multiplied by the policy's backoff) before
    giving up, making the negotiation robust to message loss.  *network*
    substitutes the transport — pass a
    :class:`~repro.faults.inject.FaultyNetwork` to negotiate over a lossy
    control plane.

    *telemetry* enables span instrumentation: every transaction is recorded
    as a hierarchical span in the given registry (timestamped in the
    network's virtual time, shifted by the network's ``time_offset`` when it
    has one), and the final tallies are accumulated into the registry's
    ``protocol.*`` counters.  *span_parent* nests the whole negotiation
    under an outer span (:func:`~repro.faults.recovery.resilient_run` hangs
    re-negotiations off their recovery phase).  Without a registry the
    seed's exact code path runs — no per-message bookkeeping at all.

    *trace_id* names the distributed trace this negotiation belongs to;
    when telemetry is enabled and no id is given, a fresh one is minted
    (:func:`~repro.telemetry.live.mint_trace_id`).  The id is stamped onto
    the seeding proposal — actors adopt it off the wire and propagate it —
    and tagged onto every transaction span, so per-actor event streams
    stitch back into one trace (``repro trace --stitch``).  Untraced runs
    (``telemetry=None``) carry no id anywhere: the wire bytes and code
    path are exactly the seed's.

    *reference* supplies an already-computed centralised
    :class:`~repro.core.bwfirst.BWFirstResult` for the negotiated platform
    (e.g. from an :class:`~repro.core.incremental.IncrementalSolver`), so
    *verify* checks against it instead of re-running ``bw_first`` from
    scratch — the duplicate solve the re-negotiation entry points used to
    pay.  It must describe the same platform and proposal; a ``t_max``
    mismatch raises :class:`~repro.exceptions.ProtocolError`.
    """
    if VIRTUAL_PARENT in tree:
        raise ProtocolError(f"{VIRTUAL_PARENT!r} is reserved")
    if tree.root in failed:
        raise ProtocolError("the root cannot be failed: nothing can negotiate")
    if network is None:
        network = Network(tree, latency_factor=latency_factor,
                          fixed_latency=fixed_latency)
    elif network.tree is not tree and set(network.tree.nodes()) != set(tree.nodes()):
        raise ProtocolError("the supplied network transports a different tree")

    spans_on = telemetry is not None and telemetry.enabled
    if spans_on and trace_id is None:
        from ..telemetry.live import mint_trace_id

        trace_id = mint_trace_id()
    offset = Fraction(getattr(network, "time_offset", 0))
    #: open transaction spans keyed by (proposer, child, xid)
    open_spans: Dict[tuple, Span] = {}
    #: per node: the span of the transaction that activated it
    inbound: Dict[Hashable, Span] = {}

    def now() -> Fraction:
        return offset + network.engine.now

    def note_proposal(sender: Hashable, message: Proposal) -> None:
        """A proposal left *sender*: open its span, or count a retry."""
        key = (sender, message.receiver, message.xid)
        span = open_spans.get(key)
        if span is None:
            open_spans[key] = telemetry.begin_span(
                "transaction",
                start=now(),
                node=message.receiver,
                parent=inbound.get(sender, span_parent),
                proposer=sender,
                beta=message.beta,
                xid=message.xid,
                trace=trace_id,
            )
        else:
            span.tags["retries"] = span.tags.get("retries", 0) + 1

    def close_span(key: tuple, outcome: str, theta=None) -> None:
        span = open_spans.pop(key, None)
        if span is not None:
            if theta is None:
                telemetry.end_span(span, end=now(), outcome=outcome)
            else:
                telemetry.end_span(span, end=now(), outcome=outcome,
                                   theta=theta)

    budgets: Dict[Hashable, Fraction] = {}
    if failed or retry is not None:
        slack = (Fraction(ack_timeout) if ack_timeout is not None
                 else (retry.slack if retry is not None else Fraction(1)))
        for node in reversed(list(tree.nodes())):  # children before parents
            parent = tree.parent(node)
            if parent is None:
                continue
            budgets[node] = (
                2 * network.link_latency(parent, node)
                + sum((budgets[ch] for ch in tree.children(node)), Fraction(0))
                + slack
            )

    actors: Dict[Hashable, NodeActor] = {}
    policy = retry if retry is not None else RetryPolicy(max_retries=0)
    attempts: Dict[tuple, int] = {}  # (sender, child, xid) → transmissions
    retransmissions = [0]
    timeouts = [0]

    def make_send(sender: Hashable):
        if not budgets:
            if not spans_on:
                return network.send

            def send_traced(message: Message) -> None:
                if isinstance(message, Proposal):
                    note_proposal(sender, message)
                network.send(message)

            return send_traced

        def send_with_timer(message: Message) -> None:
            if spans_on and isinstance(message, Proposal):
                note_proposal(sender, message)
            network.send(message)
            if not isinstance(message, Proposal) or message.receiver not in budgets:
                return
            child, xid = message.receiver, message.xid
            key = (sender, child, xid)
            attempt = attempts.get(key, 0)
            attempts[key] = attempt + 1

            def fire() -> None:
                actor = actors[sender]
                if not actor.is_pending(child, xid):
                    return  # answered (or superseded) in the meantime
                if attempts[key] <= policy.max_retries:
                    retransmissions[0] += 1
                    actor.resend_pending()  # re-enters send_with_timer
                else:
                    timeouts[0] += 1
                    actor.on_timeout(child, xid)
                    if spans_on:
                        close_span(key, "timeout")

            network.engine.schedule_in(policy.timeout(budgets[child], attempt), fire)

        return send_with_timer

    def make_observed_handler(node: Hashable, actor: NodeActor):
        """Close/link spans on delivery, then run the actor unchanged."""

        def handle(message: Message) -> None:
            if isinstance(message, Proposal):
                if actor.lam is None:
                    span = open_spans.get((message.sender, node, message.xid))
                    if span is not None:
                        inbound[node] = span
            elif isinstance(message, Acknowledgment):
                if actor.is_pending(message.sender, message.xid):
                    close_span((node, message.sender, message.xid),
                               "acked", theta=message.theta)
            actor.handle(message)

        return handle

    for node in tree.nodes():
        parent = tree.parent(node)
        children = [
            (child, tree.c(child)) for child in tree.children_by_bandwidth(node)
        ]
        actors[node] = NodeActor(
            name=node,
            rate=tree.rate(node),
            parent=parent if parent is not None else VIRTUAL_PARENT,
            children=children,
            send=make_send(node),
        )
        if node in failed:
            network.register(node, lambda message: None)  # a dead node
        elif spans_on:
            network.register(node, make_observed_handler(node, actors[node]))
        else:
            network.register(node, actors[node].handle)

    final: Dict[str, Fraction] = {}

    def virtual_handler(message: Message) -> None:
        if not isinstance(message, Acknowledgment):
            raise ProtocolError("virtual parent expected an acknowledgment")
        final["theta"] = message.theta
        if spans_on:
            close_span((VIRTUAL_PARENT, tree.root, message.xid),
                       "acked", theta=message.theta)

    network.register(VIRTUAL_PARENT, virtual_handler)

    lam = root_proposal(tree) if proposal is None else proposal
    if spans_on:
        open_spans[(VIRTUAL_PARENT, tree.root, 0)] = telemetry.begin_span(
            "transaction", start=now(), node=tree.root, parent=span_parent,
            proposer=VIRTUAL_PARENT, beta=lam, xid=0, trace=trace_id,
        )
    network.send(Proposal(sender=VIRTUAL_PARENT, receiver=tree.root, beta=lam,
                          xid=0, trace=trace_id))
    max_events = 40 * len(tree) + 200
    if retry is not None:
        # every transaction may be retransmitted and every copy duplicated
        max_events *= 2 * (policy.max_retries + 1)
    try:
        completion = network.run(max_events=max_events)
    except SimulationError as exc:
        raise ProtocolError(
            f"negotiation exceeded {max_events} events — likely a retry loop "
            "(drop rate too high for the retry budget, or timeouts shorter "
            "than the sub-negotiations they guard)",
            time=network.engine.now,
        ) from exc

    if "theta" not in final:
        raise ProtocolError(
            "the protocol did not terminate with a root ack",
            node=tree.root,
            time=network.engine.now,
            pending=actors[tree.root]._pending,
        )
    throughput = lam - final["theta"]

    if verify:
        if reference is None:
            reference_tree = _prune(tree, failed) if failed else tree
            reference = bw_first(reference_tree, proposal=proposal)
        elif reference.t_max != lam:
            raise ProtocolError(
                f"verification reference was solved for t_max={reference.t_max}, "
                f"this negotiation proposed {lam}"
            )
        if reference.throughput != throughput:
            raise ProtocolError(
                f"distributed protocol negotiated {throughput}, centralised "
                f"BW-First computes {reference.throughput}"
            )
        if not failed:
            for node, outcome in reference.outcomes.items():
                actor = actors[node]
                if actor.lam != outcome.lam or (
                    actor.state == DONE and actor.theta != outcome.theta
                ):
                    raise ProtocolError(
                        f"actor {node!r} diverged from Algorithm 1", node=node
                    )

    # the virtual parent's transaction plus every settled child transaction
    transactions = 1 + sum(len(actor.transactions) for actor in actors.values())
    view = Registry()  # per-result backing store for the tally attributes
    tallies = (
        ("protocol.messages", network.messages_sent),
        ("protocol.bytes", network.bytes_sent),
        ("protocol.transactions", transactions),
        ("protocol.retransmissions", retransmissions[0]),
        ("protocol.timeouts", timeouts[0]),
        ("protocol.dropped", getattr(network, "dropped", 0)),
        ("protocol.duplicated", getattr(network, "duplicated", 0)),
    )
    registries = (view,) if telemetry is None else (view, telemetry)
    for registry in registries:
        for name, amount in tallies:
            registry.counter(name).inc(amount)
        registry.gauge("protocol.completion_time").set(completion)
        registry.gauge("protocol.throughput").set(throughput)
        registry.gauge("protocol.visited_nodes").set(
            sum(1 for actor in actors.values() if actor.lam is not None)
        )

    return ProtocolResult(
        tree=tree,
        throughput=throughput,
        t_max=lam,
        actors=actors,
        telemetry=view,
        trace_id=trace_id,
    )
