"""Retry policy for at-least-once transactions over a lossy control plane.

A parent that proposed β to a child arms a timer; if the acknowledgment has
not arrived when it fires, the proposal is retransmitted verbatim (same β,
same transaction id) and the timer is re-armed with the timeout multiplied
by *backoff*.  After ``max_retries`` retransmissions the parent gives up
and closes the transaction as "child consumed nothing" — the fail-stop
suspicion of :meth:`~repro.protocol.actor.NodeActor.on_timeout`.

The base timeout of each edge is the hierarchical budget of
:func:`~repro.protocol.runner.run_protocol`: long enough for the child's
entire sub-negotiation on a loss-free plane.  Retransmissions are harmless
when the child is merely slow (duplicates are ignored by the idempotent
actor), and exponential backoff makes the cumulative patience
``(backoff^(max_retries+1) - 1)/(backoff - 1)`` budgets, so a live child
whose subtree itself suffers drops and retries is effectively never
mistaken for dead with the default policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.rates import as_fraction


@dataclass(frozen=True)
class RetryPolicy:
    """How a parent treats an unacknowledged proposal.

    ``max_retries`` bounds the retransmissions (0 = the original
    single-timeout fail-stop behaviour); ``backoff`` multiplies the timeout
    after every attempt; ``slack`` is the additive per-edge margin of the
    hierarchical timeout budget.
    """

    max_retries: int = 8
    backoff: Fraction = Fraction(2)
    slack: Fraction = Fraction(1)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        object.__setattr__(self, "backoff", as_fraction(self.backoff))
        object.__setattr__(self, "slack", as_fraction(self.slack))
        if self.backoff < 1:
            raise ValueError("backoff must be >= 1")
        if self.slack <= 0:
            raise ValueError("slack must be positive")

    def timeout(self, base: Fraction, attempt: int) -> Fraction:
        """Timeout for the *attempt*-th transmission (0-based) of budget *base*."""
        return base * self.backoff ** attempt
