"""BW-First as a real distributed message-passing protocol (Section 5).

* :mod:`~repro.protocol.messages` — the Proposal/Acknowledgment wire types;
* :mod:`~repro.protocol.actor` — the per-node Algorithm-1 state machine;
* :mod:`~repro.protocol.network` — latency-modelled transport + counters;
* :mod:`~repro.protocol.runner` — end-to-end negotiation with verification
  against the centralised implementation.
"""

from .actor import NodeActor
from .messages import Acknowledgment, Proposal, wire_size
from .network import Network
from .planner import plan_proposal
from .retry import RetryPolicy
from .runner import VIRTUAL_PARENT, ProtocolResult, run_protocol

__all__ = [
    "NodeActor",
    "plan_proposal",
    "Proposal",
    "Acknowledgment",
    "wire_size",
    "Network",
    "RetryPolicy",
    "ProtocolResult",
    "run_protocol",
    "VIRTUAL_PARENT",
]
