"""Cache-aware proposal planning: the federation β preference hook.

The negotiation protocol usually computes the root proposal from the
platform (``root_proposal`` = ``r_root`` + the fastest edge's bandwidth),
but several callers are free to choose among a *set* of admissible
proposals — a federation tenant re-negotiating under churn may accept any
λ at or above the saturation point (they all yield the platform's optimal
throughput; only the nominal period differs), an operator may probe a
grid of what-if proposals, a recovery path may replay a previous epoch's
λ.  Whenever such freedom exists, picking a β the incremental solver has
*already memoised* turns the whole negotiation into a cache replay.

:func:`plan_proposal` is that tie-breaker.  It never invents a proposal:
the caller supplies the admissible candidates (and stays responsible for
their admissibility), and the planner merely orders the choice —

1. a candidate with an **exact memo** at the root fingerprint (full
   replay, zero node evaluations);
2. a candidate at or above the root's **saturation threshold** with a
   saturated memo (same: full replay);
3. a candidate the **shared memo service** has an answer for, when a
   federation store is attached (a remote replay: one fetch instead of a
   solve);
4. otherwise the caller's *default*, or the smallest candidate (smallest
   keeps the nominal period — and hence buffer bounds — tightest).

Exactness is preserved by construction: the chosen β is one of the
caller's admissible candidates, and the solve under it is the same
bit-exact BW-First result a fresh ``bw_first(tree, proposal=β)`` run
produces, as the tests assert.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional

from ..core.incremental import IncrementalSolver
from ..exceptions import ScheduleError


def plan_proposal(
    solver: IncrementalSolver,
    candidates: Iterable,
    default: Optional[Fraction] = None,
    shared=None,
) -> Fraction:
    """Choose a proposal among admissible *candidates*, preferring memoised β.

    *solver* supplies the root fingerprint's memo state
    (:meth:`~repro.core.incremental.IncrementalSolver.memoised_betas`);
    *shared*, when given, is a federation memo store exposing
    ``betas(digest) -> {"saturated_above": str | None, "exact": [str, …]}``
    and is consulted only if the local cache prefers nothing.  Returns the
    chosen candidate (never anything outside *candidates* — admissibility
    is the caller's contract), falling back to *default* if supplied and
    admissible, else the smallest candidate.
    """
    cands = sorted({Fraction(c) for c in candidates})
    if not cands:
        raise ScheduleError("plan_proposal needs at least one candidate")
    root = solver.tree.root
    info = solver.memoised_betas(root)
    exact = set(info["exact"])
    for beta in cands:
        if beta in exact:
            return beta
    threshold = info["saturated_above"]
    if threshold is not None:
        for beta in cands:
            if beta >= threshold:
                return beta
    if shared is not None:
        remote = shared.betas(solver.digest(root)) or {}
        exact = {Fraction(b) for b in remote.get("exact", ())}
        for beta in cands:
            if beta in exact:
                return beta
        thr = remote.get("saturated_above")
        if thr is not None:
            threshold = Fraction(thr)
            for beta in cands:
                if beta >= threshold:
                    return beta
    if default is not None and Fraction(default) in cands:
        return Fraction(default)
    return cands[0]
