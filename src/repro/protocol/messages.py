"""Message types of the distributed BW-First protocol.

A transaction is a two-phase exchange (Definition 1 of the paper): a
:class:`Proposal` carrying the single number β travels from parent to child,
and an :class:`Acknowledgment` carrying the single number θ travels back.
Both payloads are one rational number — the paper's argument for calling the
protocol *lightweight* — and :func:`wire_size` estimates their encoded size
so the benchmark can report protocol bytes, not just message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable


@dataclass(frozen=True)
class Proposal:
    """Phase one: parent offers ``beta`` tasks per time unit to child."""

    sender: Hashable
    receiver: Hashable
    beta: Fraction


@dataclass(frozen=True)
class Acknowledgment:
    """Phase two: child returns the ``theta`` tasks/unit it could not use."""

    sender: Hashable
    receiver: Hashable
    theta: Fraction


Message = object  # Proposal | Acknowledgment


def wire_size(message: Message) -> int:
    """Bytes to encode the message: 8-byte header + the rational payload.

    The payload is a numerator/denominator pair, each varint-encoded; we
    charge one byte per 7 bits, with a 1-byte minimum per integer.
    """
    value = message.beta if isinstance(message, Proposal) else message.theta

    def varint(n: int) -> int:
        n = abs(int(n))
        return max((n.bit_length() + 6) // 7, 1)

    return 8 + varint(value.numerator) + varint(value.denominator)
