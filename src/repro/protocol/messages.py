"""Message types of the distributed BW-First protocol.

A transaction is a two-phase exchange (Definition 1 of the paper): a
:class:`Proposal` carrying the single number β travels from parent to child,
and an :class:`Acknowledgment` carrying the single number θ travels back.
Both payloads are one rational number — the paper's argument for calling the
protocol *lightweight* — and :func:`wire_size` estimates their encoded size
so the benchmark can report protocol bytes, not just message counts.

For at-least-once delivery over a lossy control plane, both message types
carry an optional transaction id ``xid``.  A retransmitted proposal reuses
its original ``xid``, and the acknowledgment echoes the ``xid`` of the
proposal it answers, so receivers can recognise duplicates and senders can
match late acknowledgments to closed transactions.  ``xid=None`` marks a
message of the original fire-and-forget protocol; its wire size is
unchanged, while numbered messages pay one extra varint.

Both types also carry an optional distributed-trace id ``trace``: the
negotiation entry point (``run_protocol`` / the runtime) mints one id per
negotiation when telemetry is enabled, every actor stamps it onto the
messages it originates, and the TCP codec round-trips it, so spans
recorded by concurrent actors — even in separate processes — stitch into
one causally-ordered trace (``repro trace --stitch``).  The trace id is
an observability envelope, not protocol payload: :func:`wire_size`
deliberately excludes it, keeping the model byte counts identical whether
or not a run is being watched (real TCP octet counters do include it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Optional


@dataclass(frozen=True, slots=True)
class Proposal:
    """Phase one: parent offers ``beta`` tasks per time unit to child."""

    sender: Hashable
    receiver: Hashable
    beta: Fraction
    xid: Optional[int] = None
    trace: Optional[str] = None


@dataclass(frozen=True, slots=True)
class Acknowledgment:
    """Phase two: child returns the ``theta`` tasks/unit it could not use."""

    sender: Hashable
    receiver: Hashable
    theta: Fraction
    xid: Optional[int] = None
    trace: Optional[str] = None


Message = object  # Proposal | Acknowledgment


def _varint(n: int) -> int:
    n = abs(int(n))
    return max((n.bit_length() + 6) // 7, 1)


def wire_size(message: Message) -> int:
    """Bytes to encode the message: 8-byte header + the rational payload.

    The payload is a numerator/denominator pair, each varint-encoded; we
    charge one byte per 7 bits, with a 1-byte minimum per integer.  A
    transaction id, when present, is one more varint.
    """
    value = message.beta if isinstance(message, Proposal) else message.theta
    size = 8 + _varint(value.numerator) + _varint(value.denominator)
    if message.xid is not None:
        size += _varint(message.xid)
    return size
