"""Per-node actors executing Algorithm 1 as a message-driven state machine.

Each :class:`NodeActor` owns exactly the state Algorithm 1 gives a node —
λ, α, δ, τ and the bandwidth-centric child cursor — and reacts to incoming
messages only:

* on a :class:`~repro.protocol.messages.Proposal` it computes its local
  share and either opens a transaction with its first child or immediately
  acknowledges its parent;
* on an :class:`~repro.protocol.messages.Acknowledgment` it settles the
  pending transaction and moves to the next child, or acknowledges its
  parent when done.

Actors know *only* local information (their ``w``, their children's link
costs, their parent's name): the semi-autonomy property of Section 5.  The
actor layer is deliberately independent of the transport so the tests can
drive it synchronously.

The state machine is **idempotent under duplicate delivery**, which makes
at-least-once retransmission over a lossy control plane safe:

* a duplicate of the proposal currently being worked on is ignored — the
  acknowledgment will go out once the sub-negotiation completes;
* a duplicate of an already-answered proposal (recognised by its ``xid``)
  is answered again from the cached θ, so a lost acknowledgment is healed
  by the parent's retransmission;
* a late or duplicate acknowledgment of an already-settled transaction is
  ignored, so a child declared dead by timeout cannot corrupt the parent's
  state when its answer finally arrives.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.rates import ONE, ZERO
from ..exceptions import ProtocolError
from .messages import Acknowledgment, Message, Proposal

#: Callback an actor uses to hand a message to the transport.
SendFn = Callable[[Message], None]

IDLE = "idle"
AWAITING_CHILD = "awaiting-child"
DONE = "done"


class NodeActor:
    """The BW-First state machine of one platform node."""

    def __init__(
        self,
        name: Hashable,
        rate: Fraction,
        parent: Optional[Hashable],
        children: Sequence[Tuple[Hashable, Fraction]],
        send: SendFn,
        trace: Optional[str] = None,
    ):
        """*children* lists ``(name, c)`` pairs already in bandwidth-centric
        order; *rate* is the node's computing rate ``1/w``.

        *trace* seeds the distributed-trace id this actor stamps onto every
        message it originates.  Only the negotiation entry point sets it
        explicitly (on the root actor); every other actor adopts the id off
        the first proposal it receives, so the id floods the tree with the
        negotiation itself — across process boundaries on the TCP
        transport, where it rides inside the checksummed frame body.
        """
        self.name = name
        self.rate = rate
        self.parent = parent
        self.children = list(children)
        self._send = send
        self.trace = trace

        self.state = IDLE
        self.lam: Optional[Fraction] = None
        self.alpha = ZERO
        self.delta = ZERO
        self.tau = ONE
        self._cursor = 0
        self._next_xid = 0
        #: the transaction awaiting its child's answer: (child, β, xid)
        self._pending: Optional[Tuple[Hashable, Fraction, Optional[int]]] = None
        #: xid of the proposal this node is currently answering (child role)
        self._proposal_xid: Optional[int] = None
        #: answered proposals, xid → θ (child role; duplicate → re-ack)
        self._answered: Dict[int, Fraction] = {}
        #: settled transaction xids (parent role; late/duplicate ack → drop)
        self._settled: Set[int] = set()
        self.transactions: List[Tuple[Hashable, Fraction, Fraction]] = []

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        """React to one incoming message."""
        if isinstance(message, Proposal):
            self._on_proposal(message)
        elif isinstance(message, Acknowledgment):
            self._on_ack(message)
        else:
            raise ProtocolError(
                f"{self.name!r}: unknown message {message!r}", node=self.name
            )

    # ------------------------------------------------------------------
    def _on_proposal(self, message: Proposal) -> None:
        if message.sender != self.parent:
            raise ProtocolError(
                f"{self.name!r} received a proposal from non-parent "
                f"{message.sender!r}",
                node=self.name,
                pending=self._pending,
            )
        if message.trace is not None:
            self.trace = message.trace
        if message.xid is not None and message.xid in self._answered:
            # retransmission of a proposal already answered: our ack was
            # lost — answer again with the cached θ
            self._send(
                Acknowledgment(
                    sender=self.name,
                    receiver=self.parent,
                    theta=self._answered[message.xid],
                    xid=message.xid,
                    trace=self.trace,
                )
            )
            return
        if self.state != IDLE:
            if message.xid is not None and message.xid == self._proposal_xid:
                return  # duplicate of the proposal we are working on
            raise ProtocolError(
                f"{self.name!r} received a proposal while {self.state}",
                node=self.name,
                pending=self._pending,
            )
        if message.beta < 0:
            raise ProtocolError(
                f"{self.name!r}: negative proposal {message.beta}", node=self.name
            )
        self.lam = message.beta
        self.alpha = min(self.rate, message.beta)
        self.delta = message.beta - self.alpha
        self.tau = ONE
        self._cursor = 0
        self._proposal_xid = message.xid
        self._advance()

    def _on_ack(self, message: Acknowledgment) -> None:
        if message.xid is not None and message.xid in self._settled:
            return  # late or duplicate answer to a closed transaction
        if self.state != AWAITING_CHILD or self._pending is None:
            raise ProtocolError(
                f"{self.name!r} received an unexpected acknowledgment",
                node=self.name,
            )
        child, beta, xid = self._pending
        if message.sender != child or (
            xid is not None and message.xid != xid
        ):
            raise ProtocolError(
                f"{self.name!r} expected an ack from {child!r}, "
                f"got one from {message.sender!r}",
                node=self.name,
                pending=self._pending,
            )
        theta = message.theta
        if theta < 0 or theta > beta:
            raise ProtocolError(
                f"{self.name!r}: child {child!r} acked {theta} of {beta}",
                node=self.name,
                pending=self._pending,
            )
        self._settle(theta)

    def _settle(self, theta: Fraction) -> None:
        child, beta, xid = self._pending
        self._pending = None
        if xid is not None:
            self._settled.add(xid)
        accepted = beta - theta
        self.delta -= accepted
        cost = dict(self.children)[child]
        self.tau -= accepted * cost
        self.transactions.append((child, beta, theta))
        self._advance()

    # ------------------------------------------------------------------
    def is_pending(self, child: Hashable, xid: Optional[int] = None) -> bool:
        """Whether the transaction with *child* (and *xid*) is still open."""
        if self.state != AWAITING_CHILD or self._pending is None:
            return False
        pending_child, _beta, pending_xid = self._pending
        if pending_child != child:
            return False
        return xid is None or pending_xid == xid

    def resend_pending(self) -> None:
        """Retransmit the pending proposal verbatim (same β, same xid)."""
        if self.state != AWAITING_CHILD or self._pending is None:
            return
        child, beta, xid = self._pending
        self._send(Proposal(sender=self.name, receiver=child, beta=beta,
                            xid=xid, trace=self.trace))

    def on_timeout(self, child: Hashable, xid: Optional[int] = None) -> None:
        """The pending transaction with *child* ran out of retries (dead
        subtree).

        The parent closes the transaction as if the child acknowledged the
        full proposal (θ = β — the subtree consumes nothing) and moves on.
        Stale timeouts (the ack arrived meanwhile, or the pending child or
        transaction is a different one) are ignored, so timers can be armed
        unconditionally.  The transaction id is recorded as settled, so an
        answer from a merely-slow child arriving after the give-up is
        dropped instead of corrupting the state machine.
        """
        if not self.is_pending(child, xid):
            return
        _child, beta, _xid = self._pending
        self._settle(beta)

    def _advance(self) -> None:
        """Open the next child transaction, or acknowledge the parent."""
        while self._cursor < len(self.children):
            if self.delta <= 0 or self.tau <= 0:
                break
            child, cost = self.children[self._cursor]
            self._cursor += 1
            beta = min(self.delta, self.tau / cost)
            xid: Optional[int] = None
            if self._proposal_xid is not None:
                # numbered negotiation: number our own transactions too
                xid = self._next_xid
                self._next_xid += 1
            self._pending = (child, beta, xid)
            self.state = AWAITING_CHILD
            self._send(
                Proposal(sender=self.name, receiver=child, beta=beta, xid=xid,
                         trace=self.trace)
            )
            return
        self.state = DONE
        if self._proposal_xid is not None:
            self._answered[self._proposal_xid] = self.delta
        self._send(
            Acknowledgment(
                sender=self.name,
                receiver=self.parent,
                theta=self.delta,
                xid=self._proposal_xid,
                trace=self.trace,
            )
        )

    # ------------------------------------------------------------------
    @property
    def theta(self) -> Fraction:
        """The acknowledgment this node returned (valid once DONE)."""
        if self.state != DONE:
            raise ProtocolError(f"{self.name!r} has not finished", node=self.name)
        return self.delta

    @property
    def accepted(self) -> Fraction:
        """λ − θ: the rate this node's subtree absorbs (valid once DONE)."""
        if self.state != DONE or self.lam is None:
            raise ProtocolError(f"{self.name!r} has not finished", node=self.name)
        return self.lam - self.delta
