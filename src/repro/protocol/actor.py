"""Per-node actors executing Algorithm 1 as a message-driven state machine.

Each :class:`NodeActor` owns exactly the state Algorithm 1 gives a node —
λ, α, δ, τ and the bandwidth-centric child cursor — and reacts to incoming
messages only:

* on a :class:`~repro.protocol.messages.Proposal` it computes its local
  share and either opens a transaction with its first child or immediately
  acknowledges its parent;
* on an :class:`~repro.protocol.messages.Acknowledgment` it settles the
  pending transaction and moves to the next child, or acknowledges its
  parent when done.

Actors know *only* local information (their ``w``, their children's link
costs, their parent's name): the semi-autonomy property of Section 5.  The
actor layer is deliberately independent of the transport so the tests can
drive it synchronously.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..core.rates import ONE, ZERO
from ..exceptions import ProtocolError
from .messages import Acknowledgment, Message, Proposal

#: Callback an actor uses to hand a message to the transport.
SendFn = Callable[[Message], None]

IDLE = "idle"
AWAITING_CHILD = "awaiting-child"
DONE = "done"


class NodeActor:
    """The BW-First state machine of one platform node."""

    def __init__(
        self,
        name: Hashable,
        rate: Fraction,
        parent: Optional[Hashable],
        children: Sequence[Tuple[Hashable, Fraction]],
        send: SendFn,
    ):
        """*children* lists ``(name, c)`` pairs already in bandwidth-centric
        order; *rate* is the node's computing rate ``1/w``."""
        self.name = name
        self.rate = rate
        self.parent = parent
        self.children = list(children)
        self._send = send

        self.state = IDLE
        self.lam: Optional[Fraction] = None
        self.alpha = ZERO
        self.delta = ZERO
        self.tau = ONE
        self._cursor = 0
        self._pending: Optional[Tuple[Hashable, Fraction]] = None
        self.transactions: List[Tuple[Hashable, Fraction, Fraction]] = []

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        """React to one incoming message."""
        if isinstance(message, Proposal):
            self._on_proposal(message)
        elif isinstance(message, Acknowledgment):
            self._on_ack(message)
        else:
            raise ProtocolError(f"{self.name!r}: unknown message {message!r}")

    # ------------------------------------------------------------------
    def _on_proposal(self, message: Proposal) -> None:
        if self.state != IDLE:
            raise ProtocolError(
                f"{self.name!r} received a proposal while {self.state}"
            )
        if message.sender != self.parent:
            raise ProtocolError(
                f"{self.name!r} received a proposal from non-parent "
                f"{message.sender!r}"
            )
        if message.beta < 0:
            raise ProtocolError(f"{self.name!r}: negative proposal {message.beta}")
        self.lam = message.beta
        self.alpha = min(self.rate, message.beta)
        self.delta = message.beta - self.alpha
        self.tau = ONE
        self._cursor = 0
        self._advance()

    def _on_ack(self, message: Acknowledgment) -> None:
        if self.state != AWAITING_CHILD or self._pending is None:
            raise ProtocolError(
                f"{self.name!r} received an unexpected acknowledgment"
            )
        child, beta = self._pending
        if message.sender != child:
            raise ProtocolError(
                f"{self.name!r} expected an ack from {child!r}, "
                f"got one from {message.sender!r}"
            )
        theta = message.theta
        if theta < 0 or theta > beta:
            raise ProtocolError(
                f"{self.name!r}: child {child!r} acked {theta} of {beta}"
            )
        self._pending = None
        accepted = beta - theta
        self.delta -= accepted
        cost = dict(self.children)[child]
        self.tau -= accepted * cost
        self.transactions.append((child, beta, theta))
        self._advance()

    def on_timeout(self, child: Hashable) -> None:
        """The pending transaction with *child* timed out (dead subtree).

        The parent closes the transaction as if the child acknowledged the
        full proposal (θ = β — the subtree consumes nothing) and moves on.
        Stale timeouts (the ack arrived meanwhile, or the pending child is a
        different one) are ignored, so timers can be armed unconditionally.
        """
        if self.state != AWAITING_CHILD or self._pending is None:
            return
        pending_child, beta = self._pending
        if pending_child != child:
            return
        self._pending = None
        self.transactions.append((child, beta, beta))
        self._advance()

    def _advance(self) -> None:
        """Open the next child transaction, or acknowledge the parent."""
        while self._cursor < len(self.children):
            if self.delta <= 0 or self.tau <= 0:
                break
            child, cost = self.children[self._cursor]
            self._cursor += 1
            beta = min(self.delta, self.tau / cost)
            self._pending = (child, beta)
            self.state = AWAITING_CHILD
            self._send(Proposal(sender=self.name, receiver=child, beta=beta))
            return
        self.state = DONE
        self._send(
            Acknowledgment(sender=self.name, receiver=self.parent, theta=self.delta)
        )

    # ------------------------------------------------------------------
    @property
    def theta(self) -> Fraction:
        """The acknowledgment this node returned (valid once DONE)."""
        if self.state != DONE:
            raise ProtocolError(f"{self.name!r} has not finished")
        return self.delta

    @property
    def accepted(self) -> Fraction:
        """λ − θ: the rate this node's subtree absorbs (valid once DONE)."""
        if self.state != DONE or self.lam is None:
            raise ProtocolError(f"{self.name!r} has not finished")
        return self.lam - self.delta
