"""Execution traces: the raw material for Gantt charts and phase analysis.

A :class:`Trace` records everything observable about a simulation run:

* **segments** — intervals during which a node resource was busy:
  ``compute`` (the CPU), ``send`` (the emission port, labelled with the
  child), ``recv`` (the reception port, labelled with the parent) and
  ``release`` markers for the root's task generation;
* **completions** — one ``(time, node)`` pair per task computed;
* **buffer deltas** — ±1 changes of the number of tasks held at a node
  (arrived or released, minus computed or forwarded), from which
  :mod:`repro.analysis.buffers` reconstructs occupancy over time.

Traces are append-only during simulation and analysed afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Tuple

COMPUTE = "compute"
SEND = "send"
RECV = "recv"
CTRL = "ctrl"  # control-plane traffic occupying a send port


@dataclass(frozen=True, slots=True)
class Segment:
    """One busy interval of one resource of one node."""

    node: Hashable
    kind: str  # COMPUTE, SEND or RECV
    start: Fraction
    end: Fraction
    peer: Optional[Hashable] = None  # child for SEND, parent for RECV

    @property
    def duration(self) -> Fraction:
        return self.end - self.start


@dataclass
class Trace:
    """Append-only record of a simulation run.

    For very long steady-state runs the segment/buffer streams dominate
    memory; construct with ``record_segments=False`` (and/or
    ``record_buffers=False``) to keep only completions — enough for
    throughput measurements — at a fraction of the footprint.

    ``record_events=False`` is the fully lean *counts-only* mode for
    multi-million-event runs: per-event lists (completions, arrivals,
    releases) stay empty and only the ``completed`` counter and
    ``end_time`` are maintained, so the trace costs O(1) memory and the
    simulator skips materialising a ``Fraction`` timestamp per event.
    """

    segments: List[Segment] = field(default_factory=list)
    completions: List[Tuple[Fraction, Hashable]] = field(default_factory=list)
    arrivals: List[Tuple[Fraction, Hashable]] = field(default_factory=list)
    buffer_deltas: List[Tuple[Fraction, Hashable, int]] = field(default_factory=list)
    releases: List[Tuple[Fraction, Hashable]] = field(default_factory=list)
    record_segments: bool = True
    record_buffers: bool = True
    record_events: bool = True
    _completed: int = 0
    _last_time: Fraction = field(default_factory=lambda: Fraction(0))

    # ------------------------------------------------------------------
    # recording (called by the simulator)
    # ------------------------------------------------------------------
    def add_segment(self, node: Hashable, kind: str, start: Fraction,
                    end: Fraction, peer: Optional[Hashable] = None) -> None:
        if end > self._last_time:
            self._last_time = end
        if self.record_segments:
            self.segments.append(Segment(node, kind, start, end, peer))

    def add_completion(self, time: Fraction, node: Hashable) -> None:
        if time > self._last_time:
            self._last_time = time
        self._completed += 1
        if self.record_events:
            self.completions.append((time, node))

    def count_completion(self) -> None:
        """Counts-only twin of :meth:`add_completion`: no timestamp needed
        (the simulator folds the last segment end into ``end_time`` when
        the run finishes)."""
        self._completed += 1

    def add_arrival(self, time: Fraction, node: Hashable) -> None:
        if self.record_events:
            self.arrivals.append((time, node))

    def add_buffer_delta(self, time: Fraction, node: Hashable, delta: int) -> None:
        if self.record_buffers:
            self.buffer_deltas.append((time, node, delta))

    def add_release(self, time: Fraction, destination: Hashable) -> None:
        if self.record_events:
            self.releases.append((time, destination))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        """Total number of tasks computed."""
        return self._completed

    @property
    def end_time(self) -> Fraction:
        """Timestamp of the last recorded activity (0 for an empty trace).

        Tracked incrementally; with segment recording disabled the
        simulator folds the final segment end in when its run completes,
        so a finished run reports the same end time either way.
        """
        return self._last_time

    def completions_by_node(self) -> Dict[Hashable, int]:
        """Tasks computed per node."""
        counts: Dict[Hashable, int] = {}
        for _, node in self.completions:
            counts[node] = counts.get(node, 0) + 1
        return counts

    def completions_in(self, start: Fraction, end: Fraction) -> int:
        """Tasks completed in the half-open window ``(start, end]``."""
        return sum(1 for t, _ in self.completions if start < t <= end)

    def segments_for(self, node: Hashable, kind: Optional[str] = None) -> List[Segment]:
        """All segments of *node*, optionally filtered by *kind*."""
        return [
            s for s in self.segments
            if s.node == node and (kind is None or s.kind == kind)
        ]

    def busy_time(self, node: Hashable, kind: str,
                  start: Fraction, end: Fraction) -> Fraction:
        """Total busy time of a resource inside ``[start, end]``."""
        total = Fraction(0)
        for s in self.segments_for(node, kind):
            lo = max(s.start, start)
            hi = min(s.end, end)
            if hi > lo:
                total += hi - lo
        return total
