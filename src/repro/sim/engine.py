"""A minimal deterministic discrete-event engine with exact rational time.

The simulator replaces the SimGrid toolkit the paper suggests for
evaluation (Section 9).  Design choices:

* **time is a :class:`~fractions.Fraction`** — every event timestamp is
  exact, so period/throughput assertions in the tests use equality;
* **deterministic ordering** — events at equal times fire in scheduling
  order (a monotonically increasing sequence number breaks ties), so a
  simulation is a pure function of its inputs;
* **callbacks, not processes** — events carry a zero-argument callable;
  there is no coroutine machinery to keep the core small and auditable.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from ..core.rates import as_fraction
from ..exceptions import SimulationError

Event = Callable[[], None]


class Engine:
    """Heap-based event loop over exact rational time."""

    def __init__(self) -> None:
        self._now: Fraction = Fraction(0)
        self._heap: List[Tuple[Fraction, int, Event]] = []
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> Fraction:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time, fn: Event) -> None:
        """Schedule *fn* to run at absolute *time* (≥ now)."""
        t = as_fraction(time)
        if t < self._now:
            raise SimulationError(f"cannot schedule at {t} < now {self._now}")
        heapq.heappush(self._heap, (t, self._seq, fn))
        self._seq += 1

    def schedule_in(self, delay, fn: Event) -> None:
        """Schedule *fn* to run *delay* time units from now (delay ≥ 0)."""
        d = as_fraction(delay)
        if d < 0:
            raise SimulationError(f"negative delay {d}")
        self.schedule_at(self._now + d, fn)

    def step(self) -> bool:
        """Run the single next event; return ``False`` when none remain."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        fn()
        return True

    def run_until(self, time) -> None:
        """Run every event with timestamp ≤ *time*; leave later ones queued.

        Afterwards ``now`` equals *time* (even if the queue ran dry sooner),
        so follow-up scheduling is relative to the horizon.
        """
        horizon = as_fraction(time)
        if horizon < self._now:
            raise SimulationError(f"cannot run backwards to {horizon}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or *max_events* is exceeded)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — livelock?"
                )
