"""A minimal deterministic discrete-event engine with exact rational time.

The simulator replaces the SimGrid toolkit the paper suggests for
evaluation (Section 9).  Design choices:

* **time is a :class:`~fractions.Fraction`** — every event timestamp is
  exact, so period/throughput assertions in the tests use equality;
* **deterministic ordering** — events at equal times fire in scheduling
  order (a monotonically increasing sequence number breaks ties), so a
  simulation is a pure function of its inputs;
* **callbacks, not processes** — events carry a zero-argument callable;
  there is no coroutine machinery to keep the core small and auditable.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from ..core.rates import as_fraction
from ..exceptions import SimulationError

Event = Callable[[], None]


class Timer:
    """Handle for a scheduled event; :meth:`cancel` prevents it from firing.

    A cancelled event is silently skipped by the loop: it does not run, does
    not count as processed, and does not advance the clock.  Cancelling an
    already-fired or already-cancelled timer is a no-op, so callers can
    cancel unconditionally (e.g. a retry timer whose acknowledgment arrived,
    or a heartbeat chain stopped after a failure was detected).
    """

    __slots__ = ("_cancelled", "_fired")

    def __init__(self) -> None:
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event can still fire."""
        return not (self._cancelled or self._fired)


class Engine:
    """Heap-based event loop over exact rational time."""

    __slots__ = ("_now", "_heap", "_seq", "_processed")

    def __init__(self) -> None:
        self._now: Fraction = Fraction(0)
        self._heap: List[Tuple[Fraction, int, Event, Timer]] = []
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> Fraction:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled (cancelled ones included)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def push(self, time, fn: Event) -> Timer:
        """Raw scheduling hot path: *time* is already in this engine's
        internal units (a ``Fraction`` here; ticks in :class:`IntEngine`).
        The simulator uses this to skip per-event coercion."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        timer = Timer()
        heapq.heappush(self._heap, (time, self._seq, fn, timer))
        self._seq += 1
        return timer

    def schedule_at(self, time, fn: Event) -> Timer:
        """Schedule *fn* to run at absolute *time* (≥ now); return its handle."""
        return self.push(as_fraction(time), fn)

    def schedule_in(self, delay, fn: Event) -> Timer:
        """Schedule *fn* to run *delay* time units from now (delay ≥ 0)."""
        d = as_fraction(delay)
        if d < 0:
            raise SimulationError(f"negative delay {d}")
        return self.schedule_at(self._now + d, fn)

    def step(self) -> bool:
        """Run the single next live event; return ``False`` when none remain."""
        while self._heap:
            time, _, fn, timer = heapq.heappop(self._heap)
            if timer._cancelled:
                continue
            timer._fired = True
            self._now = time
            self._processed += 1
            fn()
            return True
        return False

    def run_until(self, time) -> None:
        """Run every event with timestamp ≤ *time*; leave later ones queued.

        Afterwards ``now`` equals *time* (even if the queue ran dry sooner),
        so follow-up scheduling is relative to the horizon.
        """
        horizon = as_fraction(time)
        if horizon < self._now:
            raise SimulationError(f"cannot run backwards to {horizon}")
        while self._heap:
            while self._heap and self._heap[0][3]._cancelled:
                heapq.heappop(self._heap)
            if not self._heap or self._heap[0][0] > horizon:
                break
            self.step()
        self._now = horizon

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or *max_events* is exceeded).

        The :meth:`step` loop is inlined here — one Python frame per event
        is measurable on million-event runs.  ``self._heap`` is re-read
        every iteration on purpose: a mid-run rescale (:class:`IntEngine`)
        rebinds it.
        """
        count = 0
        pop = heapq.heappop
        while self._heap:
            time, _, fn, timer = pop(self._heap)
            if timer._cancelled:
                continue
            timer._fired = True
            self._now = time
            self._processed += 1
            fn()
            count += 1
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — livelock?"
                )


class IntEngine(Engine):
    """The event loop of the scaled-integer kernel: the heap holds plain
    ``int`` tick timestamps over an :class:`~repro.core.timeline.IntTimeline`.

    The *public* clock API is unchanged — :meth:`schedule_at` /
    :meth:`schedule_in` / :meth:`run_until` accept ordinary time values and
    ``now`` returns an exact :class:`~fractions.Fraction` — so external
    consumers (heartbeat monitors, fault plans, tests) interoperate with
    either engine.  Only the simulator's hot path talks ticks directly via
    :meth:`~Engine.push` and ``_now``.

    When the timeline grows its scale mid-run, the engine multiplies its
    clock and every queued timestamp by the factor; multiplication by a
    positive integer preserves heap order, so the heap stays valid as-is.
    """

    __slots__ = ("timeline",)

    def __init__(self, timeline) -> None:
        super().__init__()
        self.timeline = timeline
        self._now = 0  # ticks
        timeline.on_rescale(self._rescale)

    def _rescale(self, factor: int) -> None:
        self._now *= factor
        if self._heap:
            self._heap = [(t * factor, seq, fn, timer)
                          for t, seq, fn, timer in self._heap]

    @property
    def now(self) -> Fraction:
        """Current simulation time as an exact rational (boundary view)."""
        return self.timeline.to_fraction(self._now)

    def schedule_at(self, time, fn: Event) -> Timer:
        return self.push(self.timeline.ensure(as_fraction(time)), fn)

    def schedule_in(self, delay, fn: Event) -> Timer:
        d = self.timeline.ensure(as_fraction(delay))
        if d < 0:
            raise SimulationError(f"negative delay {as_fraction(delay)}")
        return self.push(self._now + d, fn)

    def run_until(self, time) -> None:
        # compare in Fractions: an event run inside the loop may grow the
        # timeline's scale, which would invalidate a pre-converted tick
        horizon = as_fraction(time)
        if horizon < self.now:
            raise SimulationError(f"cannot run backwards to {horizon}")
        while self._heap:
            while self._heap and self._heap[0][3]._cancelled:
                heapq.heappop(self._heap)
            if not self._heap or self.timeline.to_fraction(
                    self._heap[0][0]) > horizon:
                break
            self.step()
        self._now = self.timeline.ensure(horizon)
