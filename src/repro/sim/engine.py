"""A minimal deterministic discrete-event engine with exact rational time.

The simulator replaces the SimGrid toolkit the paper suggests for
evaluation (Section 9).  Design choices:

* **time is a :class:`~fractions.Fraction`** — every event timestamp is
  exact, so period/throughput assertions in the tests use equality;
* **deterministic ordering** — events at equal times fire in scheduling
  order (a monotonically increasing sequence number breaks ties), so a
  simulation is a pure function of its inputs;
* **callbacks, not processes** — events carry a zero-argument callable;
  there is no coroutine machinery to keep the core small and auditable.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from ..core.rates import as_fraction
from ..exceptions import SimulationError

Event = Callable[[], None]


class Timer:
    """Handle for a scheduled event; :meth:`cancel` prevents it from firing.

    A cancelled event is silently skipped by the loop: it does not run, does
    not count as processed, and does not advance the clock.  Cancelling an
    already-fired or already-cancelled timer is a no-op, so callers can
    cancel unconditionally (e.g. a retry timer whose acknowledgment arrived,
    or a heartbeat chain stopped after a failure was detected).

    A timer scheduled through an engine keeps a backreference so the engine
    can count live cancellations and compact its queue when lazily-deleted
    entries start to dominate (see :meth:`Engine._note_cancel`).
    """

    __slots__ = ("_cancelled", "_fired", "_engine")

    def __init__(self, engine: "Optional[Engine]" = None) -> None:
        self._cancelled = False
        self._fired = False
        self._engine = engine

    def cancel(self) -> None:
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        engine = self._engine
        if engine is not None:
            engine._note_cancel()

    @property
    def active(self) -> bool:
        """Whether the event can still fire."""
        return not (self._cancelled or self._fired)


#: Below this many stale entries a queue is never compacted: rebuilding a
#: tiny heap on every few cancellations would cost more than it saves.
_COMPACT_FLOOR = 64


def _invoke(fn: Event) -> None:
    """Adapter: run a zero-argument callback under the one-argument
    calling convention of :class:`ArrayEngine` bucket entries."""
    fn()


class Engine:
    """Heap-based event loop over exact rational time."""

    __slots__ = ("_now", "_heap", "_seq", "_processed", "_stale")

    def __init__(self) -> None:
        self._now: Fraction = Fraction(0)
        self._heap: List[Tuple[Fraction, int, Event, Timer]] = []
        self._seq = 0
        self._processed = 0
        self._stale = 0  # cancelled entries still sitting in the queue

    @property
    def now(self) -> Fraction:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled (cancelled ones included)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def push(self, time, fn: Event) -> Timer:
        """Raw scheduling hot path: *time* is already in this engine's
        internal units (a ``Fraction`` here; ticks in :class:`IntEngine`).
        The simulator uses this to skip per-event coercion."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        timer = Timer(self)
        heapq.heappush(self._heap, (time, self._seq, fn, timer))
        self._seq += 1
        return timer

    def _note_cancel(self) -> None:
        """A live queue entry was just cancelled.  Lazy deletion leaves it
        in place until popped; once cancelled entries outnumber live ones
        the queue is compacted so mass cancellation (heartbeat chains,
        retry storms) cannot grow it without bound."""
        self._stale += 1
        if self._stale > _COMPACT_FLOOR and self._stale * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        self._heap = [e for e in self._heap if not e[3]._cancelled]
        heapq.heapify(self._heap)
        self._stale = 0

    def schedule_at(self, time, fn: Event) -> Timer:
        """Schedule *fn* to run at absolute *time* (≥ now); return its handle."""
        return self.push(as_fraction(time), fn)

    def schedule_in(self, delay, fn: Event) -> Timer:
        """Schedule *fn* to run *delay* time units from now (delay ≥ 0)."""
        d = as_fraction(delay)
        if d < 0:
            raise SimulationError(f"negative delay {d}")
        return self.schedule_at(self._now + d, fn)

    def step(self) -> bool:
        """Run the single next live event; return ``False`` when none remain."""
        while self._heap:
            time, _, fn, timer = heapq.heappop(self._heap)
            if timer._cancelled:
                if self._stale:
                    self._stale -= 1
                continue
            timer._fired = True
            self._now = time
            self._processed += 1
            fn()
            return True
        return False

    def run_until(self, time) -> None:
        """Run every event with timestamp ≤ *time*; leave later ones queued.

        Afterwards ``now`` equals *time* (even if the queue ran dry sooner),
        so follow-up scheduling is relative to the horizon.
        """
        horizon = as_fraction(time)
        if horizon < self._now:
            raise SimulationError(f"cannot run backwards to {horizon}")
        while self._heap:
            while self._heap and self._heap[0][3]._cancelled:
                heapq.heappop(self._heap)
                if self._stale:
                    self._stale -= 1
            if not self._heap or self._heap[0][0] > horizon:
                break
            self.step()
        self._now = horizon

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or *max_events* is exceeded).

        The :meth:`step` loop is inlined here — one Python frame per event
        is measurable on million-event runs.  ``self._heap`` is re-read
        every iteration on purpose: a mid-run rescale (:class:`IntEngine`)
        rebinds it.
        """
        count = 0
        pop = heapq.heappop
        while self._heap:
            time, _, fn, timer = pop(self._heap)
            if timer._cancelled:
                if self._stale:
                    self._stale -= 1
                continue
            timer._fired = True
            self._now = time
            self._processed += 1
            fn()
            count += 1
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — livelock?"
                )


class IntEngine(Engine):
    """The event loop of the scaled-integer kernel: the heap holds plain
    ``int`` tick timestamps over an :class:`~repro.core.timeline.IntTimeline`.

    The *public* clock API is unchanged — :meth:`schedule_at` /
    :meth:`schedule_in` / :meth:`run_until` accept ordinary time values and
    ``now`` returns an exact :class:`~fractions.Fraction` — so external
    consumers (heartbeat monitors, fault plans, tests) interoperate with
    either engine.  Only the simulator's hot path talks ticks directly via
    :meth:`~Engine.push` and ``_now``.

    When the timeline grows its scale mid-run, the engine multiplies its
    clock and every queued timestamp by the factor; multiplication by a
    positive integer preserves heap order, so the heap stays valid as-is.
    """

    __slots__ = ("timeline",)

    def __init__(self, timeline) -> None:
        super().__init__()
        self.timeline = timeline
        self._now = 0  # ticks
        timeline.on_rescale(self._rescale)

    def _rescale(self, factor: int) -> None:
        self._now *= factor
        if self._heap:
            self._heap = [(t * factor, seq, fn, timer)
                          for t, seq, fn, timer in self._heap]

    @property
    def now(self) -> Fraction:
        """Current simulation time as an exact rational (boundary view)."""
        return self.timeline.to_fraction(self._now)

    def schedule_at(self, time, fn: Event) -> Timer:
        return self.push(self.timeline.ensure(as_fraction(time)), fn)

    def schedule_in(self, delay, fn: Event) -> Timer:
        d = self.timeline.ensure(as_fraction(delay))
        if d < 0:
            raise SimulationError(f"negative delay {as_fraction(delay)}")
        return self.push(self._now + d, fn)

    def run_until(self, time) -> None:
        # compare in Fractions: an event run inside the loop may grow the
        # timeline's scale, which would invalidate a pre-converted tick
        horizon = as_fraction(time)
        if horizon < self.now:
            raise SimulationError(f"cannot run backwards to {horizon}")
        while self._heap:
            while self._heap and self._heap[0][3]._cancelled:
                heapq.heappop(self._heap)
                if self._stale:
                    self._stale -= 1
            if not self._heap or self.timeline.to_fraction(
                    self._heap[0][0]) > horizon:
                break
            self.step()
        self._now = self.timeline.ensure(horizon)


class ArrayEngine(IntEngine):
    """Bucketed (calendar-queue) event loop for the array kernel.

    Events live in a dict keyed by integer tick — one list (bucket) per
    distinct timestamp — plus a min-heap of the tick keys.  The loop pops
    one tick at a time and drains its whole bucket, so N same-tick events
    cost one heap operation instead of N, and a periodic workload (the
    common case here: every release grid point lands many events on the
    same tick) spends its time in a flat list walk.

    Entries are ``(fn, arg, timer)`` triples called as ``fn(arg)``.  The
    :meth:`defer` hot path allocates **no Timer and no closure** — the
    simulator passes a bound method plus a small argument (a dense node id
    or a tuple) and ``timer`` stays ``None``.  The public :meth:`push` /
    :meth:`schedule_at` / :meth:`schedule_in` API is unchanged: it wraps
    the zero-argument callback via :func:`_invoke` and returns a live
    :class:`Timer`, so heartbeats, fault plans and crash hooks work as on
    the heap engines.

    Ordering is identical to the heap engines' ``(time, seq)``: buckets
    are FIFO, and a same-tick event scheduled *while the current bucket
    drains* lands in a fresh bucket whose tick is re-pushed on the heap
    and therefore runs right after the current batch — exactly where the
    sequence number would have put it.
    """

    __slots__ = ("_buckets", "_tick_heap", "_size", "_cur_tick")

    def __init__(self, timeline) -> None:
        super().__init__(timeline)
        self._buckets: dict = {}      # tick -> [(fn, arg, timer), ...]
        self._tick_heap: List[int] = []
        self._size = 0
        self._cur_tick = 0

    @property
    def pending(self) -> int:
        return self._size

    def defer(self, time: int, fn, arg=None) -> None:
        """Schedule ``fn(arg)`` at tick *time* with no cancellation handle.

        This is the simulator's hot path: no Timer, no closure, no tuple
        beyond the bucket entry itself.
        """
        bucket = self._buckets.get(time)
        if bucket is None:
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule at {time} < now {self._now}")
            self._buckets[time] = [(fn, arg, None)]
            heapq.heappush(self._tick_heap, time)
        else:
            # an existing bucket implies its tick was already validated
            bucket.append((fn, arg, None))
        self._size += 1

    def push(self, time, fn: Event) -> Timer:
        timer = Timer(self)
        bucket = self._buckets.get(time)
        if bucket is None:
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule at {time} < now {self._now}")
            self._buckets[time] = [(_invoke, fn, timer)]
            heapq.heappush(self._tick_heap, time)
        else:
            bucket.append((_invoke, fn, timer))
        self._size += 1
        return timer

    def _note_cancel(self) -> None:
        self._stale += 1
        if self._stale > _COMPACT_FLOOR and self._stale * 2 > self._size:
            self._compact()

    def _compact(self) -> None:
        # Rebuild the bucket dict without cancelled entries.  A bucket
        # currently being drained by run_all is not in the dict, so it is
        # untouched (its leftover cancelled entries are skipped on
        # consumption with a guarded _stale decrement).
        buckets = {}
        size = 0
        for tick, entries in self._buckets.items():
            live = [e for e in entries
                    if e[2] is None or not e[2]._cancelled]
            if live:
                buckets[tick] = live
                size += len(live)
        # in-place swap: the simulator's compiled hot handlers close over
        # the bucket dict and tick heap, so their identities must survive
        self._buckets.clear()
        self._buckets.update(buckets)
        self._tick_heap[:] = sorted(buckets)  # a sorted list is a valid heap
        self._size = size
        self._stale = 0

    def _rescale(self, factor: int) -> None:
        self._now *= factor
        self._cur_tick *= factor
        if self._buckets:
            # in-place swap: hot handlers close over dict and heap (see
            # _compact); multiplying by a positive int preserves heap order
            scaled = {t * factor: b for t, b in self._buckets.items()}
            self._buckets.clear()
            self._buckets.update(scaled)
            self._tick_heap[:] = [t * factor for t in self._tick_heap]

    def _repark(self, rest) -> None:
        """Put the undrained remainder of the current bucket back (an event
        callback raised).  The remainder is *older* than anything scheduled
        meanwhile at the same tick, so it goes in front."""
        tick = self._cur_tick
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = list(rest)
            heapq.heappush(self._tick_heap, tick)
        else:
            bucket[:0] = rest

    def run_all(self, max_events: Optional[int] = None) -> None:
        count = 0
        pop = heapq.heappop
        while self._tick_heap:
            tick = pop(self._tick_heap)
            # None: the bucket was retired by _compact (stale heap tick)
            # or this tick is a duplicate heap entry from a re-push
            entries = self._buckets.pop(tick, None)
            if entries is None:
                continue
            # _cur_tick (not the local) is the batch timestamp: a rescale
            # triggered by a callback multiplies it along with _now, so
            # neither needs per-event re-assignment.  The clock advances on
            # the first *live* event only (a fully-cancelled bucket must
            # leave ``now`` untouched, like a cancelled heap head).
            self._cur_tick = tick
            advanced = False
            n = len(entries)
            self._size -= n
            i = 0
            fired = 0
            try:
                while i < n:
                    fn, arg, timer = entries[i]
                    i += 1
                    if timer is not None:
                        if timer._cancelled:
                            if self._stale:
                                self._stale -= 1
                            continue
                        timer._fired = True
                    if not advanced:
                        self._now = self._cur_tick
                        advanced = True
                    fired += 1
                    fn(arg)
            finally:
                self._processed += fired
                if i < n:
                    rest = entries[i:]
                    self._size += len(rest)
                    self._repark(rest)
            # the livelock guard is per batch, not per event: a bucket's
            # contents are fixed once popped (same-tick events scheduled
            # by callbacks land in a fresh bucket), so every batch is
            # finite and the count check still bounds any infinite chain
            count += fired
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — livelock?"
                )

    def _next_live_tick(self) -> Optional[int]:
        """Tick of the next live event, dropping cancelled heads and stale
        heap entries on the way (mirrors the heap engines' head-popping)."""
        heap = self._tick_heap
        while heap:
            tick = heap[0]
            entries = self._buckets.get(tick)
            if entries is None:
                heapq.heappop(heap)
                continue
            timer = entries[0][2]
            if timer is not None and timer._cancelled:
                entries.pop(0)
                self._size -= 1
                if self._stale:
                    self._stale -= 1
                if not entries:
                    del self._buckets[tick]
                    heapq.heappop(heap)
                continue
            return tick
        return None

    def step(self) -> bool:
        if self._next_live_tick() is None:
            return False
        tick = self._tick_heap[0]
        entries = self._buckets[tick]
        fn, arg, timer = entries.pop(0)
        if not entries:
            del self._buckets[tick]
            heapq.heappop(self._tick_heap)
        self._size -= 1
        if timer is not None:
            timer._fired = True
        self._now = tick
        self._processed += 1
        fn(arg)
        return True

    def run_until(self, time) -> None:
        horizon = as_fraction(time)
        if horizon < self.now:
            raise SimulationError(f"cannot run backwards to {horizon}")
        while True:
            tick = self._next_live_tick()
            # compare in Fractions: an event may rescale the timeline
            if tick is None or self.timeline.to_fraction(tick) > horizon:
                break
            self.step()
        self._now = self.timeline.ensure(horizon)
