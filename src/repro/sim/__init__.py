"""Discrete-event simulation of the single-port full-overlap model.

* :mod:`~repro.sim.engine` — deterministic event loop over rational time;
* :mod:`~repro.sim.tracing` — busy segments, completions, buffer deltas;
* :mod:`~repro.sim.simulator` — execution of event-driven schedules with
  start-up, steady-state and wind-down phases.
"""

from .engine import Engine
from .simulator import (
    BufferedStartController,
    Controller,
    Simulation,
    SimulationResult,
    simulate,
)
from .tracing import COMPUTE, RECV, SEND, Segment, Trace

__all__ = [
    "Engine",
    "Controller",
    "BufferedStartController",
    "Simulation",
    "SimulationResult",
    "simulate",
    "Trace",
    "Segment",
    "COMPUTE",
    "SEND",
    "RECV",
]
