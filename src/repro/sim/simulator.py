"""Discrete-event simulation of the single-port full-overlap model.

This module executes a tree platform running the paper's event-driven
schedules (Section 6.2) — or any other routing controller — and records a
full :class:`~repro.sim.tracing.Trace`.

Model (Section 3), enforced exactly:

* a node *overlaps* receiving, computing and sending;
* the **send port** transmits to at most one child at a time,
  non-interruptibly, taking ``c`` time units per task;
* the **receive port** handles one incoming transfer at a time — automatic
  in a tree, since the unique parent sends sequentially;
* computing one task takes ``w`` time units.

Scheduling semantics:

* **non-root nodes are clock-free** (Section 6.2): the j-th task a node ever
  receives is routed by its bunch order (``order[j mod Ψ]``) the moment it
  arrives — to the local compute queue, or to the FIFO send queue drained by
  the send port;
* **the root is the only clocked node**: it owns the task supply and
  releases the designations of each bunch evenly spaced over its consumption
  period ``T^w`` (``Ψ`` releases per period).  Pacing is required — a
  work-conserving root would exceed its steady-state rates and flood its
  children — and even spacing implements the paper's "disseminate the tasks
  along the period";
* the root stops releasing when its *supply* runs out or the *horizon* is
  reached; the simulation then drains — the **wind-down** phase.

The ``compute_during_startup`` flag selects between the paper's start-up
strategy (Section 7: every node applies its event-driven schedule from the
beginning, computing immediately) and the traditional baseline (a node
computes nothing until it has buffered its steady-state task count χ_in).

Three exact time kernels drive the event loop (the ``kernel`` parameter):

* ``"int"`` (default) — the scaled-integer kernel of
  :mod:`repro.core.timeline`: every duration is normalised once to ticks
  over a global denominator ``D``, the event heap and all clock arithmetic
  run on plain Python ints, and ``Fraction`` views are materialised only at
  the API boundaries (the recorded trace, ``engine.now``, telemetry).  A
  value with an incommensurate denominator appearing mid-run (an injected
  control latency, a link-degradation factor) grows the scale in place;
* ``"array"`` — the struct-of-arrays kernel of
  :mod:`repro.sim.arraystate`: the same integer ticks, but per-node state
  lives in flat parallel arrays indexed by dense node id and the event
  loop runs over a bucketed (calendar) queue that drains all same-tick
  events per heap pop.  Fastest at scale (10k–100k nodes); numpy-backed
  when importable (``pip install repro[fast]``), pure-Python otherwise;
* ``"fraction"`` — the original ``Fraction``-per-event loop.

All kernels produce **bit-identical** results — same trace, same event
order, same rationals — as the property suite in ``tests/test_timeline.py``
asserts; the int kernel is simply several times faster and the array
kernel faster still (see ``benchmarks/bench_e27_timeline.py``,
``benchmarks/bench_e31_arraykernel.py`` and ``docs/perf.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Deque, Dict, Hashable, Mapping, Optional

from ..core.allocation import Allocation
from ..core.rates import ZERO, is_infinite
from ..core.timeline import timeline_for
from ..exceptions import SimulationError
from ..platform.tree import Tree
from ..schedule.eventdriven import NodeSchedule, build_schedules
from ..schedule.local import interleaved_order
from ..schedule.periods import NodePeriods, tree_periods
from ..telemetry.core import Registry
from .engine import ArrayEngine, Engine, IntEngine
from .tracing import COMPUTE, CTRL, RECV, SEND, Trace

#: kernels accepted by :class:`Simulation`
KERNELS = ("int", "fraction", "array")

#: tick→Fraction memo bound: cleared (cheap, regrows warm) when exceeded
_FRAC_MEMO_CAP = 1 << 18


def _identity(value):
    return value


class _SimNode:
    """Mutable per-node simulation state."""

    __slots__ = (
        "name", "w", "w_units", "compute_queue", "send_queue", "computing",
        "sending", "receiving", "arrivals", "buffered", "overlap", "dead",
    )

    def __init__(self, name: Hashable, w, overlap: bool = True) -> None:
        self.name = name
        self.w = w
        self.w_units = w  # compute duration in kernel units (ticks or Fraction)
        self.compute_queue = 0
        self.send_queue: Deque[Hashable] = deque()
        self.computing = False
        self.sending = False
        self.receiving = False
        self.arrivals = 0  # tasks received (or released, for the root)
        self.buffered = 0  # tasks currently held at the node
        self.overlap = overlap  # can compute and communicate simultaneously
        self.dead = False  # crashed: drops everything, does nothing


class Controller:
    """Routing policy: decides each task's destination and compute gating.

    The default implementation routes by the event-driven bunch order and
    always allows computing (the paper's Section 7 strategy).
    """

    def __init__(self, schedules: Mapping[Hashable, NodeSchedule]):
        self.schedules = schedules

    def destination(self, node: Hashable, arrival_index: int) -> Hashable:
        """Destination of the ``arrival_index``-th task received by *node*."""
        schedule = self.schedules.get(node)
        if schedule is None:
            retired = getattr(self, "retired", {}).get(node)
            if retired is not None:
                return retired.destination(arrival_index)
            raise SimulationError(
                f"task delivered to {node!r}, which has no schedule"
            )
        return schedule.destination(arrival_index)

    def may_compute(self, state: _SimNode) -> bool:
        """Whether *state*'s node may start computing right now."""
        return True


class BufferedStartController(Controller):
    """The traditional start-up baseline (Section 7's strawman).

    A node performs no useful computation until it has received its full
    steady-state buffer of ``χ_in`` tasks; forwarding is unrestricted.  The
    root (which holds the supply) computes from the start.
    """

    def __init__(
        self,
        schedules: Mapping[Hashable, NodeSchedule],
        thresholds: Mapping[Hashable, int],
        root: Hashable,
    ):
        super().__init__(schedules)
        self.thresholds = thresholds
        self.root = root

    def may_compute(self, state: _SimNode) -> bool:
        if state.name == self.root:
            return True
        return state.arrivals >= self.thresholds.get(state.name, 0)


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    trace: Trace
    tree: Tree
    schedules: Mapping[Hashable, NodeSchedule]
    periods: Mapping[Hashable, NodePeriods]
    released: int
    stop_time: Optional[Fraction]  # when the root stopped releasing
    end_time: Fraction
    tasks_lost: int = 0  # tasks destroyed by node crashes (incl. in flight)
    failed_at: Mapping[Hashable, Fraction] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return self.trace.completed

    @property
    def wind_down(self) -> Optional[Fraction]:
        """Time from supply cut-off to the last task completion."""
        if self.stop_time is None or not self.trace.completions:
            return None
        return max(self.end_time - self.stop_time, ZERO)


class Simulation:
    """One configured simulation run over a tree + schedules.

    All internal clock arithmetic happens in *kernel units*: plain int
    ticks for ``kernel="int"``, :class:`~fractions.Fraction` for
    ``kernel="fraction"``.  ``self._units(fraction)`` converts a rational
    into kernel units (growing the int timeline's scale when needed) and
    ``self._frac(units)`` materialises the exact rational view — the trace,
    ``failed_at``, telemetry values and every public attribute are always
    Fractions, whichever kernel runs.

    ``kernel="array"`` transparently constructs the struct-of-arrays
    subclass (:class:`~repro.sim.arraystate.ArraySimulation`): same
    constructor, same public surface, hot state in flat arrays.
    """

    def __new__(cls, *args, **kwargs):
        if cls is Simulation and kwargs.get("kernel") == "array":
            # lazy import: arraystate imports this module at load time
            from .arraystate import ArraySimulation
            return object.__new__(ArraySimulation)
        return object.__new__(cls)

    def __init__(
        self,
        tree: Tree,
        schedules: Mapping[Hashable, NodeSchedule],
        periods: Mapping[Hashable, NodePeriods],
        controller: Optional[Controller] = None,
        horizon: Optional[Fraction] = None,
        supply: Optional[int] = None,
        overlap: Optional[Mapping[Hashable, bool]] = None,
        root_pacing: str = "even",
        record_segments: bool = True,
        record_buffers: bool = True,
        record_events: bool = True,
        max_events: int = 5_000_000,
        telemetry: Optional[Registry] = None,
        kernel: str = "int",
    ):
        if horizon is None and supply is None:
            raise SimulationError("give a horizon, a supply, or both")
        if root_pacing not in ("even", "marks", "burst"):
            raise SimulationError(f"unknown root pacing {root_pacing!r}")
        if kernel not in KERNELS:
            raise SimulationError(
                f"unknown kernel {kernel!r} (expected one of {KERNELS})")
        if not record_events and (record_segments or record_buffers):
            raise SimulationError(
                "record_events=False (counts-only tracing) requires "
                "record_segments=False and record_buffers=False")
        self.root_pacing = root_pacing
        self._record_segments = record_segments
        self._record_buffers = record_buffers
        self._record_events = record_events
        self.tree = tree
        self.schedules = schedules
        self.periods = periods
        self.controller = controller or Controller(schedules)
        self.horizon = Fraction(horizon) if horizon is not None else None
        self.supply = supply
        self.max_events = max_events
        self.kernel = kernel

        self.trace = Trace(record_segments=record_segments,
                           record_buffers=record_buffers,
                           record_events=record_events)
        overlap = overlap or {}
        self.nodes: Dict[Hashable, _SimNode] = {
            n: _SimNode(n, tree.w(n), overlap=overlap.get(n, True))
            for n in tree.nodes()
        }
        #: optional live metrics: per-node task/busy/buffer counters land in
        #: this registry as the run unfolds (None = seed behaviour, no cost)
        self.telemetry = telemetry
        self._released = 0
        self._stop_time: Optional[Fraction] = None
        self._generation = 0  # bumped by reconfigure() to retire old chains
        self._control_jobs: Dict[Hashable, Deque] = {}
        self.tasks_lost = 0
        self.failed_at: Dict[Hashable, Fraction] = {}
        #: optional (parent, child, now) → Fraction multiplier on transfer
        #: times, used by fault injection for transient link degradation
        self._link_factor: Optional[Callable] = None
        #: cached (root schedule, T^w, release offsets) in kernel units
        self._grid_cache = None
        #: with segment recording off: max segment end in kernel units,
        #: flushed into the trace's end-time bookkeeping by :meth:`run`
        self._seg_end_max = ZERO if kernel == "fraction" else 0

        self._cost_units: Dict = {}
        self._horizon_units = None
        if kernel != "fraction":
            # "int" and "array" share the scaled-integer time plumbing;
            # they differ in the engine's queue layout and (for "array")
            # the per-node state representation
            self._timeline = timeline_for(tree, schedules, horizon=self.horizon)
            if kernel == "array":
                self.engine: Engine = ArrayEngine(self._timeline)
            else:
                self.engine = IntEngine(self._timeline)
            self._frac_memo: Dict[int, Fraction] = {}
            self._units = self._ensure_units
            self._frac = self._tick_fraction
            self._timeline.on_rescale(self._on_rescale)
            self._fill_duration_tables()
            if telemetry is not None:
                telemetry.gauge("timeline.scale_bits").set(
                    self._timeline.scale.bit_length())
        else:
            self._timeline = None
            self.engine = Engine()
            self._units = Fraction
            self._frac = _identity
            self._cost_units = {
                (tree.parent(n), n): tree.c(n)
                for n in tree.nodes() if tree.parent(n) is not None
            }
        self._horizon_units = (
            None if self.horizon is None else self._units(self.horizon))

    # ------------------------------------------------------------------
    # kernel plumbing
    # ------------------------------------------------------------------
    def _ensure_units(self, value) -> int:
        return self._timeline.ensure(
            value if isinstance(value, Fraction) else Fraction(value))

    def _tick_fraction(self, ticks: int) -> Fraction:
        memo = self._frac_memo
        f = memo.get(ticks)
        if f is None:
            if len(memo) >= _FRAC_MEMO_CAP:
                memo.clear()
            f = memo[ticks] = Fraction(ticks, self._timeline.scale)
        return f

    def _fill_duration_tables(self) -> None:
        """Precompute every known duration in ticks with one joint rescale."""
        tree = self.tree
        finite = [n for n in tree.nodes() if not is_infinite(tree.w(n))]
        edges = [n for n in tree.nodes() if tree.parent(n) is not None]
        ticks = self._timeline.ensure_all(
            [tree.w(n) for n in finite] + [tree.c(n) for n in edges])
        for node, w_ticks in zip(finite, ticks):
            self.nodes[node].w_units = w_ticks
        self._cost_units = {
            (tree.parent(n), n): c_ticks
            for n, c_ticks in zip(edges, ticks[len(finite):])
        }

    def _rescale_node_tables(self, factor: int) -> None:
        """Bring the per-node duration caches to the new scale.

        A hook so the array kernel can rescale its flat tables in one bulk
        multiply instead of one Python loop iteration per node."""
        for state in self.nodes.values():
            if not is_infinite(state.w_units):
                state.w_units *= factor
        self._cost_units = {k: v * factor for k, v in self._cost_units.items()}

    def _on_rescale(self, factor: int) -> None:
        """The timeline grew: bring every cached tick value to the new scale.

        (The engine rescaled its clock and heap already — it registered
        first.)  Multiplication by a positive int preserves all orderings,
        so state machines in flight are unaffected."""
        self._rescale_node_tables(factor)
        if self._horizon_units is not None:
            self._horizon_units *= factor
        if self._grid_cache is not None:
            schedule, t_w, offsets = self._grid_cache
            self._grid_cache = (schedule, t_w * factor,
                                [o * factor for o in offsets])
        self._seg_end_max *= factor
        for node, jobs in self._control_jobs.items():
            self._control_jobs[node] = deque(
                (duration * factor, cb) for duration, cb in jobs)
        self._frac_memo.clear()  # old entries denominate the old scale
        if self.telemetry is not None:
            self.telemetry.counter("timeline.rescales").inc()
            self.telemetry.gauge("timeline.scale_bits").set(
                self._timeline.scale.bit_length())

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _tel_buffer(self, node: Hashable, level: int) -> None:
        """Track a node's buffer occupancy (gauge: current; histogram:
        distribution of levels seen)."""
        self.telemetry.gauge("sim.buffer", node=node).set(level)
        self.telemetry.histogram("sim.buffer_levels", node=node).observe(level)

    # ------------------------------------------------------------------
    # root release driver
    # ------------------------------------------------------------------
    def _root_schedule(self) -> NodeSchedule:
        schedule = self.schedules.get(self.tree.root)
        if schedule is None:
            raise SimulationError("the root has no schedule — empty allocation?")
        return schedule

    def _release_offsets(self, schedule: NodeSchedule) -> list:
        """Within-period release times of the root's bunch, per pacing mode.

        * ``even`` (default): the j-th designation at ``j·T^w/Ψ`` — uniform
          dissemination along the period;
        * ``marks``: at the interleave mark positions ``k/(ψ+1)`` scaled to
          ``T^w`` (Section 6.3's geometric construction taken literally);
        * ``burst``: the whole bunch at the period start (a naive clocked
          root; the steady rates still hold, buffering suffers).

        Pure rational values, independent of the running kernel; the cached
        :meth:`_root_grid` holds their kernel-unit conversions.
        """
        t_w = Fraction(schedule.periods.t_consume)
        bunch = schedule.bunch
        if self.root_pacing == "even":
            spacing = t_w / bunch
            return [j * spacing for j in range(bunch)]
        if self.root_pacing == "burst":
            return [ZERO] * bunch
        if self.root_pacing == "marks":
            marks = []
            for i, dest in enumerate(
                [d for d in schedule.quantities]
            ):
                count = schedule.quantities[dest]
                delta = Fraction(1, count + 1)
                for k in range(1, count + 1):
                    marks.append((k * delta, count, i))
            marks.sort()
            return [pos * t_w for pos, _, _ in marks]
        raise SimulationError(f"unknown root pacing {self.root_pacing!r}")

    def _root_grid(self, schedule: NodeSchedule):
        """``(T^w, release offsets)`` of *schedule* in kernel units, cached
        per schedule object (rebuilt after a reconfiguration or rescale)."""
        cached = self._grid_cache
        if cached is not None and cached[0] is schedule:
            return cached[1], cached[2]
        units = self._units
        bunch = schedule.bunch
        if self.root_pacing == "even" and bunch:
            # the even grid is an arithmetic progression: one conversion of
            # the spacing, then plain multiplications (the bunch can be in
            # the thousands on big trees — per-offset Fraction conversion
            # would dominate start-up)
            spacing = units(Fraction(schedule.periods.t_consume) / bunch)
            t_w = spacing * bunch  # exact: T^w == Ψ · (T^w/Ψ)
            offsets = [j * spacing for j in range(bunch)]
        else:
            t_w = units(Fraction(schedule.periods.t_consume))
            offsets = [units(o) for o in self._release_offsets(schedule)]
            if self._timeline is not None:
                # a conversion above may have rescaled: re-read at final scale
                t_w = units(Fraction(schedule.periods.t_consume))
                offsets = [units(o) for o in self._release_offsets(schedule)]
        self._grid_cache = (schedule, t_w, offsets)
        return t_w, offsets

    def _schedule_period(self, k: int, origin: Fraction = ZERO,
                         generation: int = 0) -> None:
        """Lazily schedule the k-th bunch of root releases.

        *origin* anchors the period grid (non-zero after a reconfiguration);
        a stale *generation* means :meth:`reconfigure` retired this chain.
        *origin* is carried as a Fraction across periods — it is converted
        to kernel units afresh each call, so a mid-run rescale between two
        periods cannot stale it.
        """
        if generation != self._generation:
            return
        schedule = self._root_schedule()
        # absorb origin's denominator into the scale FIRST: then the final
        # conversion below cannot rescale, so the grid locals stay current
        self._units(origin)
        t_w, offsets = self._root_grid(schedule)
        start = self._units(origin) + k * t_w
        stopped = False
        for j, dest in enumerate(schedule.order):
            t = start + offsets[j]
            if self._horizon_units is not None and t >= self._horizon_units:
                stopped = True
                break
            if self.supply is not None and self._released >= self.supply:
                stopped = True
                break
            self._released += 1
            self.engine.push(
                t, lambda d=dest, g=generation, tt=t: self._release(d, tt, g)
            )
        if stopped:
            # remember when the supply was effectively cut
            if self._stop_time is None:
                self._stop_time = self._frac(t)
        else:
            self.engine.push(
                start + t_w,
                lambda g=generation: self._schedule_period(k + 1, origin, g),
            )

    def _release(self, dest: Hashable, time, generation: int = 0) -> None:
        """The root releases one task designated for *dest*."""
        if generation != self._generation:
            self._released -= 1  # the retired chain never released this task
            return
        root = self.tree.root
        state = self.nodes[root]
        state.arrivals += 1
        state.buffered += 1
        if self._record_events:
            now = self._frac(self.engine._now)
            self.trace.add_release(now, dest)
            if self._record_buffers:
                self.trace.add_buffer_delta(now, root, +1)
        if self.telemetry is not None:
            self.telemetry.counter("sim.tasks_released", node=root).inc()
            self._tel_buffer(root, state.buffered)
        self._route(root, dest)

    # ------------------------------------------------------------------
    # task movement
    # ------------------------------------------------------------------
    def _route(self, node: Hashable, dest: Hashable) -> None:
        state = self.nodes[node]
        if dest == node:
            if is_infinite(state.w):
                raise SimulationError(f"switch {node!r} was routed a compute task")
            state.compute_queue += 1
            self._try_start_compute(node)
        else:
            if dest not in self.tree.children(node):
                raise SimulationError(f"{node!r} cannot send to non-child {dest!r}")
            state.send_queue.append(dest)
            self._try_start_send(node)

    def _deliver(self, node: Hashable) -> None:
        """A task transfer to *node* just completed."""
        state = self.nodes[node]
        if state.dead:
            self.tasks_lost += 1  # delivered into a crashed node
            if self.telemetry is not None:
                self.telemetry.counter("sim.tasks_lost", node=node).inc()
            return
        index = state.arrivals
        state.arrivals += 1
        state.buffered += 1
        if self._record_events:
            now = self._frac(self.engine._now)
            self.trace.add_arrival(now, node)
            if self._record_buffers:
                self.trace.add_buffer_delta(now, node, +1)
        if self.telemetry is not None:
            self.telemetry.counter("sim.tasks_received", node=node).inc()
            self._tel_buffer(node, state.buffered)
        dest = self.controller.destination(node, index)
        self._route(node, dest)
        # a threshold controller may have just unblocked computing
        self._try_start_compute(node)

    def _try_start_compute(self, node: Hashable) -> None:
        state = self.nodes[node]
        if state.dead:
            return
        if state.computing or state.compute_queue == 0:
            return
        if not state.overlap and (state.sending or state.receiving):
            return  # a no-overlap node cannot compute while communicating
        if not self.controller.may_compute(state):
            return
        state.computing = True
        state.compute_queue -= 1
        start = self.engine._now
        end = start + state.w_units
        if self._record_segments:
            self.trace.add_segment(node, COMPUTE, self._frac(start),
                                   self._frac(end))
        elif end > self._seg_end_max:
            self._seg_end_max = end
        if self.telemetry is not None:
            self.telemetry.counter("sim.busy_time", node=node,
                                   resource="cpu").inc(state.w)
        self.engine.push(end, lambda: self._compute_done(node))

    def _compute_done(self, node: Hashable) -> None:
        state = self.nodes[node]
        if state.dead:
            return  # the task died with the node (already counted lost)
        state.computing = False
        state.buffered -= 1
        if self._record_events:
            now = self._frac(self.engine._now)
            self.trace.add_completion(now, node)
            if self._record_buffers:
                self.trace.add_buffer_delta(now, node, -1)
        else:
            self.trace.count_completion()
        if self.telemetry is not None:
            now = self._frac(self.engine._now)
            self.telemetry.counter("sim.tasks_computed", node=node).inc()
            self._tel_buffer(node, state.buffered)
            # live-throughput probes: the engine's event cursor and the
            # virtual clock, refreshed on every completion so a streaming
            # registry can render progress and event rate without touching
            # the hot path of untelemetered runs
            self.telemetry.gauge("sim.events_processed").set(
                self.engine.processed)
            self.telemetry.gauge("sim.clock").set(now)
        # communication gets priority at a no-overlap node: first release a
        # parent transfer held back by our computing, then our own port,
        # then (if still allowed) the next local task
        parent = self.tree.parent(node)
        if parent is not None:
            self._try_start_send(parent)
        self._try_start_send(node)
        self._try_start_compute(node)

    def _try_start_send(self, node: Hashable) -> None:
        state = self.nodes[node]
        if state.dead or state.sending:
            return
        if not state.overlap and state.computing:
            return  # a no-overlap node cannot send while computing
        # control messages (reconfiguration traffic) pre-empt task transfers
        # (outer guard: the jobs dict is empty in the vast majority of runs)
        jobs = self._control_jobs.get(node) if self._control_jobs else None
        if jobs:
            duration, callback = jobs.popleft()
            state.sending = True
            start = self.engine._now
            end = start + duration
            if self._record_segments:
                self.trace.add_segment(node, CTRL, self._frac(start),
                                       self._frac(end))
            elif end > self._seg_end_max:
                self._seg_end_max = end
            if self.telemetry is not None:
                self.telemetry.counter("sim.ctrl_jobs", node=node).inc()
                self.telemetry.counter("sim.busy_time", node=node,
                                       resource="send").inc(self._frac(duration))

            def ctrl_done() -> None:
                state.sending = False
                if callback is not None:
                    callback()
                self._try_start_send(node)
                self._try_start_compute(node)

            self.engine.push(end, ctrl_done)
            return
        if not state.send_queue:
            return
        # an in-order transfer to a no-overlap child waits for its CPU
        head = state.send_queue[0]
        head_state = self.nodes[head]
        if not head_state.overlap and head_state.computing:
            return  # the child's compute completion will wake us
        child = state.send_queue.popleft()
        state.sending = True
        self.nodes[child].receiving = True
        cost = self._cost_units[(node, child)]
        if self._link_factor is not None:
            # the factor callback sees the exact rational time; converting
            # its (possibly incommensurate) result may grow the scale, so
            # only read the tick clock afterwards
            start_frac = self._frac(self.engine._now)
            cost = self._units(
                self.tree.edge_cost(node, child)
                * Fraction(self._link_factor(node, child, start_frac))
            )
        start = self.engine._now
        end = start + cost
        if self._record_segments:
            start_f, end_f = self._frac(start), self._frac(end)
            self.trace.add_segment(node, SEND, start_f, end_f, peer=child)
            self.trace.add_segment(child, RECV, start_f, end_f, peer=node)
        elif end > self._seg_end_max:
            self._seg_end_max = end
        if self.telemetry is not None:
            cost_frac = self._frac(cost)
            self.telemetry.counter("sim.busy_time", node=node,
                                   resource="send").inc(cost_frac)
            self.telemetry.counter("sim.busy_time", node=child,
                                   resource="recv").inc(cost_frac)
        self.engine.push(end, lambda: self._send_done(node, child))

    def _send_done(self, node: Hashable, child: Hashable) -> None:
        state = self.nodes[node]
        if state.dead:
            # the sender crashed mid-transfer: the task was counted lost at
            # crash time; just release the child's receive port
            self.nodes[child].receiving = False
            return
        state.sending = False
        state.buffered -= 1
        self.nodes[child].receiving = False
        if self._record_buffers:
            self.trace.add_buffer_delta(self._frac(self.engine._now), node, -1)
        if self.telemetry is not None:
            self.telemetry.counter("sim.tasks_forwarded", node=node,
                                   child=child).inc()
            self._tel_buffer(node, state.buffered)
        self._deliver(child)
        self._try_start_send(node)
        # a no-overlap node's CPU may have been waiting on the port
        self._try_start_compute(node)

    # ------------------------------------------------------------------
    # fault injection (used by repro.faults)
    # ------------------------------------------------------------------
    def fail_node(self, node: Hashable) -> None:
        """Crash *node* right now (fail-stop).

        Everything the node holds is destroyed and counted in
        ``tasks_lost``: its buffered tasks (including the one being
        computed and the one its port is pushing out), its compute queue
        and its send queue.  A transfer *into* the node that is already on
        the wire completes at the parent — single-port sends are
        non-interruptible — and the task is lost on delivery.  The node's
        descendants keep running; until a recovery prunes them they starve,
        which is exactly the behaviour :func:`~repro.faults.recovery.resilient_run`
        measures.  The root cannot fail (it owns the task supply; a dead
        root is a dead application, not a recoverable fault).
        """
        if node == self.tree.root:
            raise SimulationError("the root cannot fail: it owns the supply")
        if node not in self.nodes:
            raise SimulationError(f"cannot fail unknown node {node!r}")
        if self.nodes[node].dead:
            return
        self._kill(node)

    def _kill(self, node: Hashable) -> None:
        """Shared fail-stop body: destroy *node*'s state, count the losses."""
        state = self.nodes[node]
        now = self._frac(self.engine._now)
        state.dead = True
        self.failed_at[node] = now
        if self.telemetry is not None:
            self.telemetry.counter("sim.crashes", node=node).inc()
            self.telemetry.record_span("crash", now, now, node=node,
                                       buffered=state.buffered)
        if state.buffered > 0:
            self.tasks_lost += state.buffered
            self.trace.add_buffer_delta(now, node, -state.buffered)
            if self.telemetry is not None:
                self.telemetry.counter("sim.tasks_lost",
                                       node=node).inc(state.buffered)
                self._tel_buffer(node, 0)
            state.buffered = 0
        state.compute_queue = 0
        state.send_queue.clear()
        state.computing = False
        state.sending = False  # _send_done's dead-sender guard frees the child
        self._control_jobs.pop(node, None)

    def fail_root(self) -> None:
        """Crash the acting master right now (the root-failover scenario).

        Unlike :meth:`fail_node`, here the root *is* allowed to die — the
        caller promises an election follows (:meth:`failover_root` plus
        :meth:`reconfigure` at the recovery switch).  The release chain is
        retired immediately: a dead master releases nothing.
        """
        root = self.tree.root
        if self.nodes[root].dead:
            return
        self._generation += 1  # retire pending release chains
        self._kill(root)

    def revive_node(self, node: Hashable) -> None:
        """Bring a crashed *node* back, repaired and empty.

        A no-op for a live node, so rejoin events can be armed
        unconditionally.  The node returns with clean buffers and a free
        port; its crash history in ``failed_at`` is kept for reporting.
        It rejoins the *task flow* only once a reconfiguration routes work
        to it again.
        """
        if node not in self.nodes:
            raise SimulationError(f"cannot revive unknown node {node!r}")
        state = self.nodes[node]
        if not state.dead:
            return
        state.dead = False
        state.receiving = False
        state.computing = False
        state.sending = False
        if self.telemetry is not None:
            now = self._frac(self.engine._now)
            self.telemetry.counter("sim.revivals", node=node).inc()
            self.telemetry.record_span("revive", now, now, node=node)

    def failover_root(self, new_root: Hashable) -> None:
        """Promote *new_root* after the master died (the election outcome).

        Requires the current root to be dead (:meth:`fail_root` ran) and
        *new_root* to be one of its live children.  The tree is re-rooted
        in place — the old root leaves, its remaining children re-parent
        under *new_root* at their original edge costs — and the duration
        tables are refreshed.  The caller installs the new root's schedules
        via :meth:`reconfigure`, typically in the same callback, so no
        release can fall in between.
        """
        root = self.tree.root
        if not self.nodes[root].dead:
            raise SimulationError(
                "failover requires the current root to be dead"
            )
        if new_root not in self.nodes or self.nodes[new_root].dead:
            raise SimulationError(f"cannot elect {new_root!r}: unknown or dead")
        self.tree.failover_root(new_root)
        if self._timeline is not None:
            self._fill_duration_tables()
        else:
            tree = self.tree
            self._cost_units = {
                (tree.parent(n), n): tree.c(n)
                for n in tree.nodes() if tree.parent(n) is not None
            }
        self._grid_cache = None
        if self.telemetry is not None:
            self.telemetry.counter("sim.failovers").inc()

    def schedule_failure(self, node: Hashable, time) -> None:
        """Arrange for *node* to crash at virtual *time*."""
        self.engine.schedule_at(Fraction(time), lambda: self.fail_node(node))

    def set_link_time_factor(self, factor: Optional[Callable]) -> None:
        """Install a ``(parent, child, start_time) → Fraction`` multiplier
        applied to every task-transfer duration — transient link
        degradation.  ``None`` removes it.  Transfers already in progress
        keep their original duration."""
        self._link_factor = factor

    # ------------------------------------------------------------------
    # online reconfiguration (used by repro.extensions.online)
    # ------------------------------------------------------------------
    def inject_control(self, node: Hashable, duration,
                       callback=None) -> None:
        """Queue a control-plane job on *node*'s send port.

        Control jobs model negotiation messages: they pre-empt queued task
        transfers (they are tiny but must cross the same port) and are
        recorded as ``CTRL`` segments.  Jobs for a dead node are dropped —
        its port no longer exists (the callback never fires).
        """
        if self.nodes[node].dead:
            return
        # convert BEFORE touching the queue dict: a rescale triggered by the
        # conversion replaces every queued deque with a scaled copy, so a
        # reference grabbed earlier would be appended into an orphan
        duration_units = self._units(Fraction(duration))
        self._control_jobs.setdefault(node, deque()).append(
            (duration_units, callback)
        )
        self._try_start_send(node)

    def swap_platform(self, tree: Tree) -> None:
        """The physical platform drifted: costs/weights change in place.

        *tree* must have the same topology; transfers and computations
        already in progress finish at their old durations, new ones use the
        new values.
        """
        if set(tree.nodes()) != set(self.tree.nodes()):
            raise SimulationError("swap_platform requires the same topology")
        self.tree = tree
        for node in tree.nodes():
            self.nodes[node].w = tree.w(node)
        if self._timeline is not None:
            self._fill_duration_tables()
        else:
            for node in tree.nodes():
                self.nodes[node].w_units = self.nodes[node].w
            self._cost_units = {
                (tree.parent(n), n): tree.c(n)
                for n in tree.nodes() if tree.parent(n) is not None
            }

    def reconfigure(self, schedules: Mapping[Hashable, NodeSchedule],
                    periods: Mapping[Hashable, NodePeriods]) -> None:
        """Switch every node to new event-driven *schedules* right now.

        The old root release chain is retired and a new one starts
        immediately, anchored at the current time; clock-free nodes keep
        their arrival counters and simply continue into the new bunch
        orders (nodes dropped from the new schedules drain residual tasks
        by their retired orders).
        """
        # merge with schedules retired by earlier reconfigurations: a node
        # pruned two epochs ago may still be draining its residual buffer
        retired = dict(getattr(self.controller, "retired", None) or {})
        retired.update(self.schedules)
        self.schedules = dict(schedules)
        self.periods = dict(periods)
        self.controller.schedules = self.schedules
        self.controller.retired = retired
        self._generation += 1
        self._grid_cache = None
        origin_units = self.engine._now
        origin = self._frac(origin_units)
        self.engine.push(
            origin_units,
            lambda g=self._generation: self._schedule_period(0, origin, g),
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion: release until horizon/supply, then drain."""
        if self.telemetry is not None and self.horizon is not None:
            self.telemetry.gauge("sim.horizon").set(self.horizon)
        self._schedule_period(0)
        self.engine.run_all(max_events=self.max_events)
        if self.telemetry is not None:
            self.telemetry.gauge("sim.events_processed").set(
                self.engine.processed)
        if not self._record_segments and self._seg_end_max:
            # segment ends were tracked in kernel units (cheap int compares
            # on the int kernel) instead of per-event trace updates; fold
            # the max into the trace so end_time matches a recording run
            end_f = self._frac(self._seg_end_max)
            if end_f > self.trace._last_time:
                self.trace._last_time = end_f
        stop = self._stop_time
        if stop is None and self.horizon is not None:
            stop = self.horizon
        return SimulationResult(
            trace=self.trace,
            tree=self.tree,
            schedules=self.schedules,
            periods=self.periods,
            released=self._released,
            stop_time=stop,
            end_time=self.trace.end_time,
            tasks_lost=self.tasks_lost,
            failed_at=dict(self.failed_at),
        )


def simulate(
    tree: Tree,
    allocation: Optional[Allocation] = None,
    policy: Callable = interleaved_order,
    horizon: Optional[Fraction] = None,
    supply: Optional[int] = None,
    compute_during_startup: bool = True,
    overlap: Optional[Mapping[Hashable, bool]] = None,
    root_pacing: str = "even",
    record_segments: bool = True,
    record_buffers: bool = True,
    record_events: bool = True,
    max_events: int = 5_000_000,
    telemetry: Optional[Registry] = None,
    kernel: str = "int",
) -> SimulationResult:
    """One-call simulation of *tree* running its optimal event-driven schedule.

    When *allocation* is omitted it is computed by BW-First.  *policy* orders
    each node's bunch (default: the paper's interleaving).  The root releases
    tasks until *horizon* time units and/or *supply* tasks, whichever comes
    first; the simulation then drains and the result's ``wind_down`` measures
    the drain time.  ``compute_during_startup=False`` selects the traditional
    buffered-start baseline instead of the paper's Section 7 strategy.

    *overlap* maps nodes to their overlap capability (Section 3's operation
    modes; default: every node is full-overlap).  A ``False`` node cannot
    compute while either of its ports is active: its CPU defers to transfers
    (an inbound transfer to it waits for its current task to finish, then
    takes priority over the next one).  Running the *full-overlap-optimal*
    schedule on such nodes measures what the overlap capability is worth —
    experiment E18 — not the optimum of the non-overlap model, which is a
    different scheduling problem.

    *telemetry* attaches a :class:`~repro.telemetry.core.Registry`: the run
    then maintains per-node counters (``sim.tasks_released`` /
    ``sim.tasks_received`` / ``sim.tasks_computed`` / ``sim.tasks_lost``,
    per-link ``sim.tasks_forwarded``), port/CPU busy-time counters
    (``sim.busy_time{node,resource}``) and buffer-occupancy gauges and
    histograms, live as the simulation unfolds.  ``None`` (the default)
    runs the exact uninstrumented code path.

    *kernel* selects the exact time kernel: ``"int"`` (default) runs the
    event loop on scaled-integer ticks (same results, several times
    faster), ``"array"`` on struct-of-arrays state over a bucketed tick
    queue (fastest at 10k+ nodes), ``"fraction"`` on per-event rationals —
    see the module docstring, :mod:`repro.core.timeline` and
    :mod:`repro.sim.arraystate`.  ``record_events=False`` (requires the
    other two ``record_*`` flags off) keeps only the completion counter
    and end time — the counts-only mode for multi-million-event runs.
    """
    if allocation is None:
        from ..core.allocation import from_bw_first
        from ..core.bwfirst import bw_first

        allocation = from_bw_first(bw_first(tree))
    periods = tree_periods(allocation)
    schedules = build_schedules(allocation, policy=policy, periods=periods)
    if compute_during_startup:
        controller: Controller = Controller(schedules)
    else:
        thresholds = {node: periods[node].chi_in for node in schedules}
        controller = BufferedStartController(schedules, thresholds, tree.root)
    sim = Simulation(
        tree,
        schedules,
        periods,
        controller=controller,
        horizon=horizon,
        supply=supply,
        overlap=overlap,
        root_pacing=root_pacing,
        record_segments=record_segments,
        record_buffers=record_buffers,
        record_events=record_events,
        max_events=max_events,
        telemetry=telemetry,
        kernel=kernel,
    )
    return sim.run()
