"""Struct-of-arrays simulation state: the ``kernel="array"`` core.

The int kernel (PR 5) made event *timestamps* cheap; at 10k+ nodes the
remaining cost is per-event Python object churn — attribute loads on
per-node ``_SimNode`` objects, a Timer + closure per heap push, one heap
operation per event.  This module removes all three:

* **per-node state lives in flat parallel arrays** indexed by a dense
  node id (:func:`~repro.core.timeline.dense_index`): ``bytearray`` flags
  (dead/computing/sending/receiving/overlap), plain-int lists (compute
  queue depth, arrival/buffer counters) and :class:`DurationTable` tick
  tables for compute/transfer durations.  ``sim.nodes`` stays a mapping
  of name → node state — each value is a :class:`_NodeView` window onto
  the arrays — so heartbeat monitors, fault plans and custom controllers
  are unchanged;
* **the event loop is the bucketed** :class:`~repro.sim.engine.ArrayEngine`
  — same-tick events drain in one batch, and the simulator schedules its
  hot events via ``defer(tick, bound_method, small_arg)``: no Timer, no
  closure, no per-event allocation beyond one tuple;
* **routing is precompiled**: each node's bunch order is translated once
  into a dense-id route table, so the per-task destination lookup is two
  list indexes instead of a dict walk through schedule objects (custom
  controllers transparently fall back to the generic path).

Durations are stored int64-packed — a numpy array when numpy is
importable (the ``repro[fast]`` extra), ``array('q')`` otherwise — so a
mid-run rescale is one vectorised multiply; the *hot read path* is always
a plain Python int list, so no numpy scalar ever leaks into tick
arithmetic.  A rescale that would exceed int64 triggers a warn-once +
``sim.int64_fallbacks`` telemetry counter and a transparent fallback to
arbitrary-precision Python ints: slower, never wrong.  Set
``REPRO_NO_NUMPY=1`` to force the pure-Python backends (the no-numpy CI
leg does).

The kernel is **bit-identical** to ``kernel="fraction"`` — same trace,
same event order, same rationals, including crashes, rejoin,
reconfiguration and mid-run rescales — property-tested across 25 seeds in
``tests/test_timeline.py``.
"""

from __future__ import annotations

import os
import warnings
from array import array
from collections import deque
from fractions import Fraction
from heapq import heappush
from typing import Callable, Dict, Hashable, List, Optional

from ..core.rates import ZERO, is_infinite
from ..core.timeline import dense_index
from ..exceptions import SimulationError
from .tracing import COMPUTE, CTRL, RECV, SEND

# simulator never imports this module at load time (the kernel="array"
# dispatch imports it lazily), so this is cycle-free
from .simulator import Controller, Simulation

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

_I64_MAX = 2**63 - 1


def _numpy():
    """The numpy module, or ``None`` when absent or disabled via the
    ``REPRO_NO_NUMPY`` environment variable (checked per call so tests and
    the no-numpy CI leg can flip it without reimporting)."""
    if _np is None or os.environ.get("REPRO_NO_NUMPY"):
        return None
    return _np


class DurationTable:
    """Per-node integer tick durations: int64 bulk storage + exact reads.

    ``values`` is *always* a plain Python list of exact ints — the hot
    path indexes it directly, so no ``np.int64`` (whose arithmetic can
    silently wrap) ever reaches tick math.  The packed store (numpy int64
    array or ``array('q')``) is the bulk layer: :meth:`rescale` multiplies
    it in one vectorised operation and regenerates ``values`` via
    ``tolist()``.  When a value would exceed int64 — a huge denominator
    joining the timeline mid-run — the table drops to ``mode="object"``
    (plain-int bulk loop) and reports the fallback once through
    *on_fallback*; exactness is never at stake, only the bulk speed.
    """

    __slots__ = ("values", "mode", "_store", "_on_fallback")

    def __init__(self, values, on_fallback: Optional[Callable] = None):
        self.values: List[int] = [int(v) for v in values]
        self._on_fallback = on_fallback
        self._store = None
        self.mode = "object"
        self._pack()

    def _pack(self) -> None:
        np = _numpy()
        try:
            if np is not None:
                self._store = np.array(self.values, dtype=np.int64)
                self.mode = "numpy"
            else:
                self._store = array("q", self.values)
                self.mode = "array"
        except (OverflowError, ValueError):
            # values too large to pack at construction time
            self._to_object()

    def _to_object(self) -> None:
        self._store = None
        self.mode = "object"
        hook = self._on_fallback
        if hook is not None:
            self._on_fallback = None  # report each table's fallback once
            hook()

    def get(self, i: int) -> int:
        return self.values[i]

    def set(self, i: int, value: int) -> None:
        value = int(value)
        self.values[i] = value
        store = self._store
        if store is not None:
            try:
                store[i] = value
            except (OverflowError, ValueError):
                self._to_object()

    def rescale(self, factor: int) -> None:
        """Multiply every duration by a positive int *factor* (a timeline
        scale growth), falling back to object mode on int64 overflow.

        ``values`` is updated **in place** (slice assignment): the compiled
        hot handlers close over the list object, so its identity must
        survive every rescale.
        """
        mode = self.mode
        if mode == "numpy":
            store = self._store
            if len(store) == 0:
                return
            if int(store.max()) * factor > _I64_MAX:
                self._to_object()
            else:
                store *= factor
                self.values[:] = store.tolist()
                return
        elif mode == "array":
            try:
                self._store = array("q", (v * factor for v in self.values))
            except OverflowError:
                self._to_object()
            else:
                self.values[:] = self._store.tolist()
                return
        # object mode (possibly just entered): exact, unbounded
        self.values[:] = [v * factor for v in self.values]


class ArrayState:
    """Flat parallel per-node state arrays indexed by dense node id.

    Built from a fully-initialised ``name → _SimNode`` mapping; after
    construction the arrays are the single source of truth and the
    original ``_SimNode`` objects are discarded (the simulation's
    ``nodes`` mapping is replaced by :class:`_NodeView` windows).

    ``send_queue[i]`` holds **dense child ids**, not names.
    """

    __slots__ = (
        "names", "index", "parent", "dead", "computing", "sending",
        "receiving", "overlap", "w_inf", "compute_queue", "arrivals",
        "buffered", "send_queue", "w_frac", "w_units", "cost",
        "int64_fallbacks", "_fallback_hook", "backend",
    )

    def __init__(self, tree, nodes, cost_units,
                 on_fallback: Optional[Callable] = None):
        self._fallback_hook = on_fallback
        self.int64_fallbacks = 0
        self.names, self.index = dense_index(nodes)
        index = self.index
        n = len(self.names)
        self.parent = [-1] * n
        for name in tree.nodes():
            p = tree.parent(name)
            if p is not None:
                self.parent[index[name]] = index[p]
        self.dead = bytearray(n)
        self.computing = bytearray(n)
        self.sending = bytearray(n)
        self.receiving = bytearray(n)
        self.overlap = bytearray(n)
        self.w_inf = bytearray(n)
        self.compute_queue = [0] * n
        self.arrivals = [0] * n
        self.buffered = [0] * n
        self.send_queue = [deque() for _ in range(n)]
        self.w_frac: List = [None] * n
        w_units = [0] * n
        for name, state in nodes.items():
            i = index[name]
            self.dead[i] = 1 if state.dead else 0
            self.computing[i] = 1 if state.computing else 0
            self.sending[i] = 1 if state.sending else 0
            self.receiving[i] = 1 if state.receiving else 0
            self.overlap[i] = 1 if state.overlap else 0
            self.w_frac[i] = state.w
            if is_infinite(state.w_units):
                self.w_inf[i] = 1
            else:
                w_units[i] = state.w_units
            self.compute_queue[i] = state.compute_queue
            self.arrivals[i] = state.arrivals
            self.buffered[i] = state.buffered
            self.send_queue[i].extend(index[d] for d in state.send_queue)
        cost = [0] * n
        for (_, child), ticks in cost_units.items():
            cost[index[child]] = ticks
        self.w_units = DurationTable(w_units, on_fallback=self._fallback)
        self.cost = DurationTable(cost, on_fallback=self._fallback)
        self.backend = self.w_units.mode

    def _fallback(self) -> None:
        self.int64_fallbacks += 1
        self.backend = "object"
        hook = self._fallback_hook
        if hook is not None:
            hook()

    def rescale(self, factor: int) -> None:
        self.w_units.rescale(factor)
        self.cost.rescale(factor)


class _NodeView:
    """A ``_SimNode``-compatible window onto one dense id of an
    :class:`ArrayState`: external consumers (heartbeat monitors, custom
    controllers, fault plans, tests) read and write the same attributes
    they would on a ``_SimNode`` and the arrays stay the single source of
    truth."""

    __slots__ = ("_s", "_i")

    def __init__(self, state: ArrayState, i: int):
        self._s = state
        self._i = i

    @property
    def name(self):
        return self._s.names[self._i]

    @property
    def w(self):
        return self._s.w_frac[self._i]

    @w.setter
    def w(self, value):
        s, i = self._s, self._i
        s.w_frac[i] = value
        s.w_inf[i] = 1 if is_infinite(value) else 0

    @property
    def w_units(self):
        s, i = self._s, self._i
        if s.w_inf[i]:
            return s.w_frac[i]  # the infinite rational, as in _SimNode
        return s.w_units.values[i]

    @w_units.setter
    def w_units(self, value):
        s, i = self._s, self._i
        if is_infinite(value):
            s.w_inf[i] = 1
            return
        s.w_inf[i] = 0
        s.w_units.set(i, value)

    @property
    def send_queue(self):
        """The outbound FIFO (holds dense child ids on this kernel)."""
        return self._s.send_queue[self._i]

    @property
    def compute_queue(self) -> int:
        return self._s.compute_queue[self._i]

    @compute_queue.setter
    def compute_queue(self, value: int) -> None:
        self._s.compute_queue[self._i] = value

    @property
    def arrivals(self) -> int:
        return self._s.arrivals[self._i]

    @arrivals.setter
    def arrivals(self, value: int) -> None:
        self._s.arrivals[self._i] = value

    @property
    def buffered(self) -> int:
        return self._s.buffered[self._i]

    @buffered.setter
    def buffered(self, value: int) -> None:
        self._s.buffered[self._i] = value

    @property
    def computing(self) -> bool:
        return bool(self._s.computing[self._i])

    @computing.setter
    def computing(self, value: bool) -> None:
        self._s.computing[self._i] = 1 if value else 0

    @property
    def sending(self) -> bool:
        return bool(self._s.sending[self._i])

    @sending.setter
    def sending(self, value: bool) -> None:
        self._s.sending[self._i] = 1 if value else 0

    @property
    def receiving(self) -> bool:
        return bool(self._s.receiving[self._i])

    @receiving.setter
    def receiving(self, value: bool) -> None:
        self._s.receiving[self._i] = 1 if value else 0

    @property
    def overlap(self) -> bool:
        return bool(self._s.overlap[self._i])

    @overlap.setter
    def overlap(self, value: bool) -> None:
        self._s.overlap[self._i] = 1 if value else 0

    @property
    def dead(self) -> bool:
        return bool(self._s.dead[self._i])

    @dead.setter
    def dead(self, value: bool) -> None:
        self._s.dead[self._i] = 1 if value else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_NodeView {self.name!r} idx={self._i}>"


class ArraySimulation(Simulation):
    """:class:`~repro.sim.simulator.Simulation` with struct-of-arrays hot
    state.  Constructed transparently by ``Simulation(kernel="array")``;
    the public surface (``nodes``, ``engine``, fault injection, online
    reconfiguration, telemetry) is identical — see the module docstring
    for what moved into arrays."""

    def __init__(self, *args, **kwargs):
        if kwargs.get("kernel", "array") != "array":
            raise SimulationError("ArraySimulation requires kernel='array'")
        kwargs["kernel"] = "array"
        # base __init__ runs on ordinary _SimNodes (rescales during the
        # initial duration fill are handled by the base tables); the
        # arrays take over afterwards
        self._astate: Optional[ArrayState] = None
        self._int64_fallbacks = 0
        self._seg_cell = [0]  # _seg_end_max cell (see property below)
        super().__init__(*args, **kwargs)
        st = ArrayState(self.tree, self.nodes, self._cost_units,
                        on_fallback=self._note_int64_fallback)
        self._astate = st
        self._views = [_NodeView(st, i) for i in range(len(st.names))]
        self.nodes = {name: view for name, view in zip(st.names, self._views)}
        self._root_idx = st.index[self.tree.root]
        self._routes: List[Optional[list]] = [None] * len(st.names)
        self._route_flags = [True, True]  # [fast_routes, default_may]
        self._rebuild_routes()
        self._bind_hot()

    # hot-handler cells: the compiled closures (see _bind_hot) read these
    # through identity-stable lists, while base-class code keeps using the
    # original attribute names
    @property
    def _fast_routes(self) -> bool:
        return self._route_flags[0]

    @property
    def _default_may(self) -> bool:
        return self._route_flags[1]

    @property
    def _seg_end_max(self):
        return self._seg_cell[0]

    @_seg_end_max.setter
    def _seg_end_max(self, value) -> None:
        self._seg_cell[0] = value

    # ------------------------------------------------------------------
    # int64 overflow fallback reporting
    # ------------------------------------------------------------------
    def _note_int64_fallback(self) -> None:
        self._int64_fallbacks += 1
        if self._int64_fallbacks == 1:
            warnings.warn(
                "kernel='array': tick magnitudes exceeded int64; duration "
                "tables fell back to exact arbitrary-precision ints "
                "(results stay exact, bulk rescales lose vectorisation)",
                RuntimeWarning, stacklevel=3)
        if self.telemetry is not None:
            self.telemetry.counter("sim.int64_fallbacks").inc()

    # ------------------------------------------------------------------
    # precompiled routing
    # ------------------------------------------------------------------
    def _rebuild_routes(self) -> None:
        """Translate every node's bunch order into dense ids, validated
        once: an entry is an ``int`` destination id when the base kernel's
        per-event checks (self-route on a finite-w node, or a genuine
        child) are known to pass, else the raw destination name so the
        generic path reproduces the base error lazily at event time."""
        st = self._astate
        index = st.index
        tree = self.tree
        tree_nodes = set(tree.nodes())
        routes: List[Optional[list]] = [None] * len(st.names)
        for name, schedule in self.schedules.items():
            i = index.get(name)
            order = schedule.order
            if i is None or not order or name not in tree_nodes:
                continue
            children = set(tree.children(name))
            entries: list = []
            for dest in order:
                if dest == name and not st.w_inf[i]:
                    entries.append(i)
                elif dest in children:
                    entries.append(index[dest])
                else:
                    entries.append(dest)
            routes[i] = entries
        # in-place: the compiled hot handlers close over the route list
        # and the flag cell, so both identities must survive a rebuild
        self._routes[:] = routes
        controller = self.controller
        self._route_flags[0] = (
            type(controller).destination is Controller.destination)
        self._route_flags[1] = (
            type(controller).may_compute is Controller.may_compute)

    # ------------------------------------------------------------------
    # name-based API → dense-id hot paths
    # ------------------------------------------------------------------
    # The base class's task-movement methods would corrupt the dense-id
    # send queues (they append names), so every one of them delegates.
    def _release(self, dest, time=None, generation: int = 0) -> None:
        self._release_slow((dest, generation))

    def _route(self, node, dest) -> None:
        self._route_by_name(self._astate.index[node], dest)

    def _deliver(self, node) -> None:
        self._deliver_a(self._astate.index[node])

    def _try_start_compute(self, node) -> None:
        self._try_compute_a(self._astate.index[node])

    def _try_start_send(self, node) -> None:
        self._try_send_a(self._astate.index[node])

    def _compute_done(self, node) -> None:
        self._compute_done_a(self._astate.index[node])

    def _send_done(self, node, child) -> None:
        st = self._astate
        self._send_done_a((st.index[node], st.index[child]))

    # ------------------------------------------------------------------
    # root release driver (dense-id port of Simulation._schedule_period)
    # ------------------------------------------------------------------
    def _schedule_period(self, k: int, origin: Fraction = ZERO,
                         generation: int = 0) -> None:
        if generation != self._generation:
            return
        schedule = self._root_schedule()
        # absorb origin's denominator into the scale FIRST (see base)
        self._units(origin)
        t_w, offsets = self._root_grid(schedule)
        start = self._units(origin) + k * t_w
        stopped = False
        engine = self.engine
        route = None
        if schedule is self.schedules.get(self.tree.root):
            route = self._routes[self._root_idx]
        for j, dest in enumerate(schedule.order):
            t = start + offsets[j]
            if self._horizon_units is not None and t >= self._horizon_units:
                stopped = True
                break
            if self.supply is not None and self._released >= self.supply:
                stopped = True
                break
            self._released += 1
            d = route[j] if route is not None else dest
            if type(d) is int:
                engine.defer(t, self._release_a, (d, generation))
            else:
                engine.defer(t, self._release_slow, (d, generation))
        if stopped:
            if self._stop_time is None:
                self._stop_time = self._frac(t)
        else:
            engine.defer(start + t_w, self._period_a, (k + 1, origin,
                                                       generation))

    def _period_a(self, arg) -> None:
        k, origin, generation = arg
        self._schedule_period(k, origin, generation)

    def _release_slow(self, arg) -> None:
        """Generic release: full base-kernel destination checks."""
        dest, generation = arg
        if generation != self._generation:
            self._released -= 1
            return
        st = self._astate
        ri = self._root_idx
        st.arrivals[ri] += 1
        st.buffered[ri] += 1
        root = st.names[ri]
        if self._record_events:
            now = self._frac(self.engine._now)
            self.trace.add_release(now, dest)
            if self._record_buffers:
                self.trace.add_buffer_delta(now, root, +1)
        if self.telemetry is not None:
            self.telemetry.counter("sim.tasks_released", node=root).inc()
            self._tel_buffer(root, st.buffered[ri])
        self._route_by_name(ri, dest)

    # ------------------------------------------------------------------
    # task movement (dense-id ports of the base hot methods; guard order
    # and side-effect order match the base exactly — the equivalence
    # property suite pins this)
    # ------------------------------------------------------------------
    def _route_by_name(self, i: int, dest) -> None:
        st = self._astate
        name = st.names[i]
        if dest == name:
            if st.w_inf[i]:
                raise SimulationError(
                    f"switch {name!r} was routed a compute task")
            st.compute_queue[i] += 1
            self._try_compute_a(i)
        else:
            if dest not in self.tree.children(name):
                raise SimulationError(
                    f"{name!r} cannot send to non-child {dest!r}")
            st.send_queue[i].append(st.index[dest])
            self._try_send_a(i)

    def _deliver_a(self, i: int) -> None:
        st = self._astate
        if st.dead[i]:
            self.tasks_lost += 1  # delivered into a crashed node
            if self.telemetry is not None:
                self.telemetry.counter("sim.tasks_lost",
                                       node=st.names[i]).inc()
            return
        index = st.arrivals[i]
        st.arrivals[i] = index + 1
        st.buffered[i] += 1
        if self._record_events:
            name = st.names[i]
            now = self._frac(self.engine._now)
            self.trace.add_arrival(now, name)
            if self._record_buffers:
                self.trace.add_buffer_delta(now, name, +1)
        if self.telemetry is not None:
            name = st.names[i]
            self.telemetry.counter("sim.tasks_received", node=name).inc()
            self._tel_buffer(name, st.buffered[i])
        if self._fast_routes:
            route = self._routes[i]
            if route is not None:
                d = route[index % len(route)]
                if type(d) is int:
                    if d == i:
                        st.compute_queue[i] += 1
                        self._try_compute_a(i)
                    else:
                        st.send_queue[i].append(d)
                        self._try_send_a(i)
                else:
                    self._route_by_name(i, d)
                self._try_compute_a(i)
                return
        # generic path: custom controller, or no/retired schedule
        dest = self.controller.destination(st.names[i], index)
        self._route_by_name(i, dest)
        self._try_compute_a(i)

    # ------------------------------------------------------------------
    # compiled hot handlers
    # ------------------------------------------------------------------
    def _bind_hot(self) -> None:
        """Compile the five per-event handlers into closures.

        CPython resolves closure cells several times faster than instance
        attributes, and these handlers run once per task movement — the
        whole point of the array kernel.  Everything captured here is
        identity-stable for the simulation's lifetime: the state arrays
        and duration ``values`` lists are only ever updated in place, the
        engine swaps its bucket dict/heap in place on compaction and
        rescale, and the route table and flag/segment cells are list
        objects whose contents (not identity) change on reconfiguration.
        Scalars that genuinely move mid-run (generation, root id, link
        factor, controller) are read through ``sim`` on every call.

        Guard order and side-effect order match the base kernel exactly —
        the cross-kernel equivalence property suite pins this.
        """
        sim = self
        st = self._astate
        engine = self.engine
        buckets = engine._buckets
        tick_heap = engine._tick_heap
        names = st.names
        parent = st.parent
        dead = st.dead
        computing = st.computing
        sending = st.sending
        receiving = st.receiving
        overlap = st.overlap
        compute_queue = st.compute_queue
        arrivals = st.arrivals
        buffered = st.buffered
        send_queue = st.send_queue
        w_vals = st.w_units.values
        cost_vals = st.cost.values
        w_frac = st.w_frac
        routes = self._routes
        flags = self._route_flags
        seg = self._seg_cell
        jobs = self._control_jobs
        views = self._views
        trace = self.trace
        tel = self.telemetry
        frac = self._frac
        rec_events = self._record_events
        rec_buffers = self._record_buffers
        rec_segments = self._record_segments
        count_completion = trace.count_completion
        # lean == the transfer-start tail has no observers (no segments,
        # no telemetry): send_done may then start follow-up transfers in
        # place instead of re-entering try_send (the link factor, which
        # can be installed mid-run, is re-checked per use)
        lean = tel is None and not rec_segments

        def release(arg):
            # hot release: destination id pre-validated by the route table
            di, generation = arg
            if generation != sim._generation:
                sim._released -= 1  # the retired chain never released it
                return
            ri = sim._root_idx
            arrivals[ri] += 1
            buffered[ri] += 1
            if rec_events:
                now = frac(engine._now)
                trace.add_release(now, names[di])
                if rec_buffers:
                    trace.add_buffer_delta(now, names[ri], +1)
            if tel is not None:
                root = names[ri]
                tel.counter("sim.tasks_released", node=root).inc()
                sim._tel_buffer(root, buffered[ri])
            if di == ri:
                compute_queue[ri] += 1
                if not computing[ri]:
                    try_compute(ri)
            else:
                send_queue[ri].append(di)
                if not sending[ri]:
                    try_send(ri)

        def try_compute(i):
            if dead[i] or computing[i] or not compute_queue[i]:
                return
            if not overlap[i] and (sending[i] or receiving[i]):
                return  # a no-overlap node cannot compute while communicating
            if not flags[1] and not sim.controller.may_compute(views[i]):
                return
            computing[i] = 1
            compute_queue[i] -= 1
            start = engine._now
            end = start + w_vals[i]
            if rec_segments:
                trace.add_segment(names[i], COMPUTE, frac(start), frac(end))
            elif end > seg[0]:
                seg[0] = end
            if tel is not None:
                tel.counter("sim.busy_time", node=names[i],
                            resource="cpu").inc(w_frac[i])
            # inline ArrayEngine.defer: end >= now by construction, so the
            # past-time check is unnecessary
            b = buckets.get(end)
            if b is None:
                buckets[end] = [(compute_done, i, None)]
                heappush(tick_heap, end)
            else:
                b.append((compute_done, i, None))
            engine._size += 1

        def compute_done(i):
            if dead[i]:
                return  # the task died with the node (already counted lost)
            computing[i] = 0
            buffered[i] -= 1
            if rec_events:
                now = frac(engine._now)
                trace.add_completion(now, names[i])
                if rec_buffers:
                    trace.add_buffer_delta(now, names[i], -1)
            else:
                count_completion()
            if tel is not None:
                name = names[i]
                tel.counter("sim.tasks_computed", node=name).inc()
                sim._tel_buffer(name, buffered[i])
                tel.gauge("sim.events_processed").set(engine.processed)
                tel.gauge("sim.clock").set(frac(engine._now))
            # wake order matches the base: parent's port, own port, own
            # CPU (each call guarded by the callee's cheap reject so idle
            # wakes cost no call)
            p = parent[i]
            if p >= 0 and not sending[p] and (send_queue[p] or jobs):
                try_send(p)
            if not sending[i] and (send_queue[i] or jobs):
                try_send(i)
            if compute_queue[i] and not computing[i]:
                try_compute(i)

        def try_send(i):
            if dead[i] or sending[i]:
                return
            if not overlap[i] and computing[i]:
                return  # a no-overlap node cannot send while computing
            if jobs:
                # control messages pre-empt task transfers (cold path)
                j = jobs.get(names[i])
                if j:
                    duration, callback = j.popleft()
                    sending[i] = 1
                    name = names[i]
                    start = engine._now
                    end = start + duration
                    if rec_segments:
                        trace.add_segment(name, CTRL, frac(start),
                                          frac(end))
                    elif end > seg[0]:
                        seg[0] = end
                    if tel is not None:
                        tel.counter("sim.ctrl_jobs", node=name).inc()
                        tel.counter("sim.busy_time", node=name,
                                    resource="send").inc(frac(duration))

                    def ctrl_done(_arg, i=i, callback=callback):
                        sending[i] = 0
                        if callback is not None:
                            callback()
                        try_send(i)
                        try_compute(i)

                    engine.defer(end, ctrl_done)
                    return
            queue = send_queue[i]
            if not queue:
                return
            # an in-order transfer to a no-overlap child waits for its CPU
            ci = queue[0]
            if not overlap[ci] and computing[ci]:
                return  # the child's compute completion will wake us
            queue.popleft()
            sending[i] = 1
            receiving[ci] = 1
            cost = cost_vals[ci]
            if sim._link_factor is not None:
                # the factor callback sees the exact rational time;
                # converting its (possibly incommensurate) result may grow
                # the scale, so only read the tick clock afterwards
                name, child = names[i], names[ci]
                start_frac = frac(engine._now)
                cost = sim._units(
                    sim.tree.edge_cost(name, child)
                    * Fraction(sim._link_factor(name, child, start_frac))
                )
            start = engine._now
            end = start + cost
            if rec_segments:
                name, child = names[i], names[ci]
                start_f, end_f = frac(start), frac(end)
                trace.add_segment(name, SEND, start_f, end_f, peer=child)
                trace.add_segment(child, RECV, start_f, end_f, peer=name)
            elif end > seg[0]:
                seg[0] = end
            if tel is not None:
                name, child = names[i], names[ci]
                cost_frac = frac(cost)
                tel.counter("sim.busy_time", node=name,
                            resource="send").inc(cost_frac)
                tel.counter("sim.busy_time", node=child,
                            resource="recv").inc(cost_frac)
            # inline ArrayEngine.defer: end >= now by construction
            b = buckets.get(end)
            if b is None:
                buckets[end] = [(send_done, (i, ci), None)]
                heappush(tick_heap, end)
            else:
                b.append((send_done, (i, ci), None))
            engine._size += 1

        def send_done(arg):
            # the single hottest event: one call per task transfer.  The
            # delivery to the child is inlined (not routed through
            # _deliver_a) and the wake-up calls are guarded by their cheap
            # reject conditions, so the common case runs with no Python
            # call beyond the queue insert.  Observable order matches the
            # base: deliver child (route, child port, child CPU), own
            # port, own CPU.
            i, ci = arg
            if dead[i]:
                # the sender crashed mid-transfer: the task was counted
                # lost at crash time; just release the child's receive port
                receiving[ci] = 0
                return
            sending[i] = 0
            buffered[i] -= 1
            receiving[ci] = 0
            if rec_buffers:
                trace.add_buffer_delta(frac(engine._now), names[i], -1)
            if tel is not None:
                tel.counter("sim.tasks_forwarded", node=names[i],
                            child=names[ci]).inc()
                sim._tel_buffer(names[i], buffered[i])
            # --- deliver to the child (inline _deliver_a) ---
            if dead[ci]:
                sim.tasks_lost += 1  # delivered into a crashed node
                if tel is not None:
                    tel.counter("sim.tasks_lost", node=names[ci]).inc()
            else:
                index = arrivals[ci]
                arrivals[ci] = index + 1
                buffered[ci] += 1
                if rec_events:
                    now = frac(engine._now)
                    trace.add_arrival(now, names[ci])
                    if rec_buffers:
                        trace.add_buffer_delta(now, names[ci], +1)
                if tel is not None:
                    tel.counter("sim.tasks_received",
                                node=names[ci]).inc()
                    sim._tel_buffer(names[ci], buffered[ci])
                route = routes[ci] if flags[0] else None
                if route is not None:
                    d = route[index % len(route)]
                    if type(d) is int:
                        if d == ci:
                            compute_queue[ci] += 1
                        else:
                            send_queue[ci].append(d)
                            if not sending[ci]:
                                # forwarders relay every task: start the
                                # child's transfer in place when nothing
                                # observes the start (try_send otherwise —
                                # the guards below mirror its rejects)
                                if (lean and not jobs
                                        and sim._link_factor is None):
                                    if overlap[ci] or not computing[ci]:
                                        cj = send_queue[ci][0]
                                        if overlap[cj] or not computing[cj]:
                                            send_queue[ci].popleft()
                                            sending[ci] = 1
                                            receiving[cj] = 1
                                            end = engine._now + cost_vals[cj]
                                            if end > seg[0]:
                                                seg[0] = end
                                            b = buckets.get(end)
                                            if b is None:
                                                buckets[end] = [
                                                    (send_done, (ci, cj),
                                                     None)]
                                                heappush(tick_heap, end)
                                            else:
                                                b.append((send_done,
                                                          (ci, cj), None))
                                            engine._size += 1
                                else:
                                    try_send(ci)
                    else:
                        sim._route_by_name(ci, d)
                else:
                    # generic path: custom controller or retired schedule
                    sim._route_by_name(
                        ci, sim.controller.destination(names[ci], index))
                if compute_queue[ci] and not computing[ci]:
                    try_compute(ci)
            # --- wake the sender's port, then (no-overlap) its CPU ---
            if not sending[i] and (send_queue[i] or jobs):
                if (lean and not jobs and sim._link_factor is None
                        and not dead[i]):
                    # start the sender's next queued transfer in place
                    if overlap[i] or not computing[i]:
                        ck = send_queue[i][0]
                        if overlap[ck] or not computing[ck]:
                            send_queue[i].popleft()
                            sending[i] = 1
                            receiving[ck] = 1
                            end = engine._now + cost_vals[ck]
                            if end > seg[0]:
                                seg[0] = end
                            b = buckets.get(end)
                            if b is None:
                                buckets[end] = [(send_done, (i, ck), None)]
                                heappush(tick_heap, end)
                            else:
                                b.append((send_done, (i, ck), None))
                            engine._size += 1
                else:
                    try_send(i)
            if compute_queue[i] and not computing[i]:
                try_compute(i)

        self._release_a = release
        self._try_compute_a = try_compute
        self._compute_done_a = compute_done
        self._try_send_a = try_send
        self._send_done_a = send_done

    # ------------------------------------------------------------------
    # structural changes: keep arrays and route tables in sync
    # ------------------------------------------------------------------
    def _rescale_node_tables(self, factor: int) -> None:
        st = self._astate
        if st is None:
            # rescale during the base __init__'s initial duration fill:
            # the arrays don't exist yet, the _SimNode path handles it
            super()._rescale_node_tables(factor)
            return
        st.rescale(factor)
        self._cost_units = {k: v * factor
                            for k, v in self._cost_units.items()}

    def _fill_duration_tables(self) -> None:
        super()._fill_duration_tables()
        st = self._astate
        if st is None:
            return  # initial fill during base __init__
        # a failover/platform swap changed topology or costs: refresh the
        # parent array, the cost table and the compiled routes (the base
        # fill already wrote w_units through the node views)
        tree = self.tree
        index = st.index
        parent = st.parent
        for i in range(len(parent)):
            parent[i] = -1
        for name in tree.nodes():
            p = tree.parent(name)
            if p is not None:
                parent[index[name]] = index[p]
        for (_, child), ticks in self._cost_units.items():
            st.cost.set(index[child], ticks)
        self._root_idx = index[tree.root]
        self._rebuild_routes()

    def reconfigure(self, schedules, periods) -> None:
        super().reconfigure(schedules, periods)
        self._rebuild_routes()
