"""Self-healing supervision: the full churn lifecycle, epoch by epoch.

:func:`resilient_run` stages fault recovery inside one discrete-event
simulation of the paper's platform.  Where earlier revisions only pruned
(crash → detect → cut → re-negotiate → switch), the supervisor now drives
every leg of the lifecycle as a sequence of **epochs** — one epoch per
platform-changing event, each ending in a re-negotiation and an in-place
schedule switch:

* **prune** — at the plan's crash times nodes fail fail-stop; the
  :class:`~repro.faults.detect.HeartbeatMonitor` declares each death
  ``interval·⌈crash/interval⌉ + timeout`` into the run; crashes declared
  at the same instant form one wave and are pruned together;
* **failover** — the master itself dies (:class:`~repro.faults.plan.RootFailover`);
  once declared, the survivors elect the highest-priority live child
  (first in bandwidth-centric order) as the new root.  With the
  incremental solver, election *replays* the old negotiation state instead
  of restarting it: every sibling subtree's fingerprint survives the
  re-rooting, so only the new root's own decision is recomputed;
* **quarantine** — a hostile link (:class:`~repro.faults.plan.Corruption`)
  garbles control payloads; the integrity check discards each corrupt
  frame before any state machine sees it, and after ``quarantine_after``
  consecutive corrupt frames the supervisor declares the child hostile and
  prunes it exactly as if it had crashed;
* **rejoin** — a repaired subtree returns (:class:`~repro.faults.plan.NodeRejoin`);
  the supervisor grafts it back where it left, re-solves incrementally
  along the root-to-graft path (reviving the pre-crash fingerprints from
  cache), splices the schedules and switches **on a period boundary** of
  the running schedule — landing exactly on the grown tree's ``bw_first``
  optimum.

Every epoch's re-negotiation crosses the plan's lossy/hostile control
plane (or the real asyncio runtime, with *runtime*), its control messages
occupy the very send ports that carry tasks, and the achieved rate after
the final switch settles to **exactly** the BW-First optimum of whatever
platform survived — Proposition 2, asserted by the protocol runner and
measured again by the report.

The run is deterministic end to end: the same plan (same seed) produces
the identical trace, detection times, epochs, message counts and recovery
timeline.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..analysis.throughput import measured_rate
from ..core.allocation import from_bw_first
from ..core.bwfirst import bw_first
from ..core.incremental import resolve_solver
from ..core.rates import ZERO, as_fraction
from ..exceptions import FaultError
from ..platform.tree import Tree
from ..protocol.retry import RetryPolicy
from ..protocol.runner import run_protocol
from ..schedule.eventdriven import build_schedules
from ..schedule.periods import global_period, tree_periods
from ..sim.simulator import Simulation
from ..telemetry.core import Registry
from .detect import HeartbeatMonitor, detection_time
from .inject import FaultyNetwork, apply_to_simulation
from .plan import FaultPlan

#: Epoch processing order at equal trigger times: deaths are handled before
#: the election they may starve, hostile children are cut before a repaired
#: node is welcomed back.
_RANK = {"prune": 0, "failover": 1, "quarantine": 2, "rejoin": 3}


@dataclass(frozen=True)
class EpochReport:
    """One platform-changing event and the renegotiation it triggered."""

    kind: str  # "prune" | "failover" | "quarantine" | "rejoin"
    nodes: Tuple[Hashable, ...]  # pruned / quarantined / grafted / elected
    t_trigger: Fraction  # when the supervisor learned of the event
    t_start: Fraction  # when its renegotiation began
    t_switched: Fraction  # when the new schedule took over
    optimum: Fraction  # BW-First throughput of the platform after the epoch
    messages: int  # renegotiation control messages
    bytes: int  # renegotiation control bytes (real octets over TCP)


@dataclass(frozen=True)
class RecoveryReport:
    """Everything one self-healing run produced.

    Rates are exact rationals measured on the trace; ``rate_after`` equals
    ``new_optimum`` once the final switched schedule reaches steady state.

    The run's tallies (tasks lost, heartbeat rounds, re-negotiation
    messages/bytes, retransmissions, control-plane faults) are telemetry
    counters in ``telemetry``; the historical attributes read from it.
    """

    old_optimum: Fraction  # BW-First throughput of the full tree
    new_optimum: Fraction  # BW-First throughput of the final platform
    rate_before: Optional[Fraction]  # achieved rate before the first crash
    rate_during: Fraction  # achieved rate from first crash to final switch
    rate_after: Fraction  # achieved rate of the settled final schedule
    t_first_crash: Fraction
    t_detect: Fraction  # when the last death was declared
    t_switched: Fraction  # when the final schedule took over
    detected_at: Mapping[Hashable, Fraction]  # declaration time per death
    survivors: Tree  # the final platform
    timeline: Tuple[Tuple[Fraction, Fraction], ...]  # (window start, rate)
    result: object = None  # the full SimulationResult (trace inspection)
    telemetry: Registry = field(default_factory=Registry, repr=False)
    epochs: Tuple[EpochReport, ...] = ()
    quarantined: Tuple[Hashable, ...] = ()  # children cut for hostility
    rejoined: Tuple[Hashable, ...] = ()  # subtrees grafted back
    rejoins_skipped: Tuple[Hashable, ...] = ()  # rejoins with no graft point
    new_root: Optional[Hashable] = None  # elected master, if a failover ran

    @property
    def tasks_lost(self) -> int:
        """Tasks destroyed by the crashes (incl. in flight)."""
        return self.telemetry.value("recovery.tasks_lost")

    @property
    def heartbeats(self) -> int:
        """Monitoring rounds the detector ran."""
        return self.telemetry.value("recovery.heartbeats")

    @property
    def renegotiation_messages(self) -> int:
        return self.telemetry.value("recovery.renegotiation_messages")

    @property
    def renegotiation_bytes(self) -> int:
        return self.telemetry.value("recovery.renegotiation_bytes")

    @property
    def retransmissions(self) -> int:
        """Proposals retransmitted across every negotiation."""
        return self.telemetry.value("recovery.retransmissions")

    @property
    def dropped(self) -> int:
        """Control messages the fault plan destroyed."""
        return self.telemetry.value("recovery.dropped")

    @property
    def duplicated(self) -> int:
        """Control messages the fault plan duplicated."""
        return self.telemetry.value("recovery.duplicated")

    @property
    def corrupted(self) -> int:
        """Control messages garbled on the wire (detected and discarded)."""
        return self.telemetry.value("recovery.corrupted")

    @property
    def negotiation_wallclock(self) -> Fraction:
        """Time between declaring the last death and the final switch."""
        return self.t_switched - self.t_detect

    @property
    def recovery(self) -> Fraction:
        """Recovered rate as a fraction of the final platform's optimum."""
        if self.new_optimum == 0:
            return Fraction(1)
        return self.rate_after / self.new_optimum


def resilient_run(
    tree: Tree,
    plan: FaultPlan,
    heartbeat_interval=Fraction(1),
    detection_timeout=Fraction(1, 2),
    retry: Optional[RetryPolicy] = None,
    latency_factor=Fraction(1, 100),
    settle_periods: int = 2,
    after_periods: int = 6,
    window=None,
    max_events: int = 5_000_000,
    telemetry: Optional[Registry] = None,
    runtime: Optional[str] = None,
    solver=None,
    quarantine_after: int = 3,
    kernel: str = "int",
) -> RecoveryReport:
    """Run *tree* under *plan* with automatic detection and re-negotiation.

    * *heartbeat_interval* / *detection_timeout* parameterize the
      :class:`~repro.faults.detect.HeartbeatMonitor`;
    * *retry* is the at-least-once policy for every negotiation (default:
      :class:`~repro.protocol.retry.RetryPolicy()`);
    * the run continues for *settle_periods* + *after_periods* global
      periods of the **final** schedule after the last switch;
      ``rate_after`` is measured over the last *after_periods* of them
      (the settle periods absorb the drain of stale in-flight tasks);
    * *window* sets the timeline resolution (default: the old global
      period);
    * *max_events* bounds the supervised simulation.  Exact measurement
      costs whole global periods, and global periods are LCMs — on
      adversarial rational rates they (and hence the event count) can
      explode.  Raise the bound for such platforms, or lower
      *after_periods* / *settle_periods* to shorten the horizon;
    * *quarantine_after* — consecutive corrupt frames on a link before its
      child is declared hostile and pruned;
    * *kernel* selects the supervised simulation's time kernel
      (``"int"`` default, ``"fraction"``, or ``"array"`` for the
      struct-of-arrays kernel — all three are bit-identical, see
      :mod:`repro.sim.arraystate`).

    The plan must contain something to recover from: a crash, a root
    failover, or a hostile (corrupting) link.

    *telemetry* threads one :class:`~repro.telemetry.core.Registry` through
    the whole story: every negotiation records its transaction spans into
    it (each epoch's nested under its ``renegotiate`` phase and shifted to
    its virtual start time), the supervised simulation its per-node
    counters, and the recovery itself a span tree — one ``recovery`` root
    whose children narrate each epoch (``detect``/``prune``,
    ``detect``/``elect``, ``quarantine``/``prune`` or ``rejoin``/``graft``,
    then ``renegotiate`` and ``switch``).  With telemetry enabled the run
    additionally mints one distributed-trace id
    (:func:`~repro.telemetry.live.mint_trace_id`) threaded through every
    negotiation of the story, and a deterministic per-epoch id
    (``<trace>.e<n>``) tagged onto each epoch's narration spans, so the
    live dashboard and ``repro trace --stitch`` can group the whole
    recovery under one causally-ordered trace.

    *runtime* (``"inproc"`` or ``"tcp"``) routes every **re-negotiation**
    through the real asyncio runtime of :mod:`repro.runtime` instead of
    the virtual-time simulation: the survivors negotiate as genuinely
    concurrent actors over actual queues or loopback sockets, and the
    recovered schedule is built from that live result.  The supervised
    simulation still needs a *virtual* duration for each negotiation
    window, so the switch time is derived analytically
    (:func:`~repro.runtime.runtime.sequential_completion_time` under this
    run's latency model).  Over TCP the epoch's ``renegotiation_bytes``
    are the transport's real ``octets_sent``, so the report's byte
    accounting matches what actually crossed the sockets.  The initial
    negotiation keeps crossing the plan's lossy simulated control plane
    either way.  Transaction spans of a runtime re-negotiation are not
    recorded into *telemetry* (their wall-clock timestamps would not lie
    on the virtual timeline); its tallies still are.

    *solver* picks the centralised reference solver (see
    :func:`~repro.core.incremental.resolve_solver`): the default
    ``"incremental"`` solves the full tree once, then mutates in place —
    pruning crashed subtrees, re-rooting on failover, grafting rejoined
    subtrees back — and re-solves only the dirty path from cache, so a
    rejoin *revives* the subtree's pre-crash fingerprints instead of
    recomputing them.  ``"full"`` restores from-scratch solves; an
    :class:`~repro.core.incremental.IncrementalSolver` instance (seeded
    with *tree*) carries its cache across calls.  Either way the rates are
    exactly equal — the solvers are interchangeable by construction.
    """
    plan.validate(tree)
    if not plan.crashes and plan.failover is None and not plan.hostile:
        raise FaultError("the plan crashes nothing — nothing to recover from")
    if quarantine_after < 1:
        raise FaultError("quarantine_after must be >= 1")
    policy = retry if retry is not None else RetryPolicy()
    interval = as_fraction(heartbeat_interval)
    timeout = as_fraction(detection_timeout)
    latency_factor = as_fraction(latency_factor)

    # a rejoin must not beat the declaration of its own death: the monitor
    # would revive the node before ever declaring it, and the supervisor
    # would graft a subtree it never knew was gone
    for rejoin in plan.rejoins:
        declared = detection_time(plan.crash_time(rejoin.node),
                                  interval, timeout)
        if rejoin.time < declared:
            raise FaultError(
                f"{rejoin.node!r} rejoins at {rejoin.time}, before its death "
                f"is declared at {declared}"
            )

    spans_on = telemetry is not None and telemetry.enabled
    run_trace: Optional[str] = None
    if spans_on:
        from ..telemetry.live import mint_trace_id

        run_trace = mint_trace_id()

    # ------------------------------------------------------------------
    # initial negotiation (latency-modelled, lossy/hostile control plane)
    # ------------------------------------------------------------------
    inc = resolve_solver(solver, tree, telemetry=telemetry)
    old_result = bw_first(tree) if inc is None else inc.solve()

    initial_net = FaultyNetwork(
        tree, plan, latency_factor=latency_factor,
        quarantine_after=quarantine_after,
    )
    initial = run_protocol(
        tree,
        network=initial_net,
        retry=policy,
        telemetry=telemetry,
        reference=old_result,
        trace_id=run_trace,
    )

    old_allocation = from_bw_first(old_result)
    if inc is None:
        old_periods = tree_periods(old_allocation)
        old_schedules = build_schedules(old_allocation, periods=old_periods)
    else:
        # fragment-caching reconstruction: each epoch's rebuild below then
        # recomputes only the paths the mutation dirtied
        old_periods, old_schedules = inc.schedule_builder().build(old_allocation)
    old_t = global_period(old_periods, telemetry=telemetry, tree=tree)

    # ------------------------------------------------------------------
    # the event queue: every platform-changing trigger, in supervisor order
    # ------------------------------------------------------------------
    events: List[tuple] = []
    serial = 0

    def push(trigger: Fraction, kind: str, payload) -> None:
        nonlocal serial
        heapq.heappush(events, (trigger, _RANK[kind], serial, kind, payload))
        serial += 1

    planned_detection: Dict[Hashable, Fraction] = {
        crash.node: detection_time(crash.time, interval, timeout)
        for crash in plan.crashes
    }
    waves: Dict[Fraction, List] = {}
    for crash in plan.crashes:
        waves.setdefault(planned_detection[crash.node], []).append(crash)
    for declared, wave in waves.items():
        push(declared, "prune", wave)
    if plan.failover is not None:
        declared = detection_time(plan.failover.time, interval, timeout)
        planned_detection[tree.root] = declared
        push(declared, "failover", plan.failover.time)
    for rejoin in plan.rejoins:
        push(rejoin.time, "rejoin", rejoin.node)
    quarantine_pushed: set = set()
    for child, declared in initial_net.quarantined.items():
        quarantine_pushed.add(child)
        push(declared, "quarantine", child)

    t_first_crash = min(
        [crash.time for crash in plan.crashes]
        + ([plan.failover.time] if plan.failover is not None else []),
        default=ZERO,
    )

    # ------------------------------------------------------------------
    # the epoch engine: mutate → re-solve → renegotiate → plan the switch
    # ------------------------------------------------------------------
    live = tree.copy()  # the supervisor's view of the platform
    original_root = tree.root
    stash: Dict[Hashable, tuple] = {}  # node → (parent, c, subtree snapshot)
    epochs: List[EpochReport] = []
    quarantined_children: List[Hashable] = []
    rejoined: List[Hashable] = []
    rejoins_skipped: List[Hashable] = []
    new_root_name: Optional[Hashable] = None
    failover_done = False

    #: analytic actions to arm on the simulation once it exists
    port_jobs: List[tuple] = []  # (start, [(node, latency), ...])
    switches: List[tuple] = []  # (switch, failover new_root or None,
    #                              schedules, periods)

    prev_switch: Optional[Fraction] = None
    current_t = old_t
    final_result = old_result
    final_allocation = old_allocation
    recovery_span = None
    corrupted_total = initial_net.corrupted
    reneg_messages = reneg_bytes = 0
    retransmissions = initial.retransmissions
    dropped = initial.dropped
    duplicated = initial.duplicated

    def cut(node: Hashable) -> bool:
        """Take *node*'s subtree out of the live platform (or a stash).

        Returns ``True`` when the live platform changed.  A node already
        stashed is left there; a node strictly inside someone's stashed
        subtree is carved out of that stash so a later rejoin brings back
        only what actually works.
        """
        if node in live:
            snapshot = live.subtree(node)
            parent, cost = live.parent(node), live.c(node)
            stash[node] = (parent, cost, snapshot)
            if inc is None:
                live.remove_subtree(node)
            else:
                inc.prune(node)
                live.remove_subtree(node)
            return True
        if node in stash:
            return False  # already out (e.g. quarantined before crashing)
        for holder, (_p, _c, held) in list(stash.items()):
            if node in held and node != holder:
                sub = held.subtree(node)
                stash[node] = (held.parent(node), held.c(node), sub)
                held.remove_subtree(node)
                return False
        return False  # vanished with an unrepaired ancestor

    def alive_at(node: Hashable, when: Fraction) -> bool:
        crashed_at = plan.crash_time(node)
        if crashed_at is None or crashed_at > when:
            return True
        returned = plan.rejoin_time(node)
        return returned is not None and returned <= when

    while events:
        trigger, _rank, _serial, kind, payload = heapq.heappop(events)
        start = trigger if prev_switch is None else max(trigger, prev_switch)

        changed = False
        epoch_nodes: Tuple[Hashable, ...] = ()
        if kind == "prune":
            wave = sorted(payload, key=lambda crash: str(crash.node))
            for crash in wave:
                if crash.node == live.root:
                    raise FaultError(
                        f"the acting master {crash.node!r} crashed after "
                        "failover — no further election is modelled"
                    )
            wave_first = min(crash.time for crash in wave)
            cut_nodes = [c.node for c in wave if cut(c.node)]
            changed = bool(cut_nodes)
            epoch_nodes = tuple(cut_nodes)
        elif kind == "quarantine":
            child = payload
            if child in live and child != live.root:
                cut(child)
                quarantined_children.append(child)
                changed = True
                epoch_nodes = (child,)
        elif kind == "rejoin":
            node = payload
            entry = stash.pop(node, None)
            if entry is None:
                rejoins_skipped.append(node)
            else:
                parent, cost, snapshot = entry
                if parent not in live and failover_done and (
                    parent == original_root
                ):
                    parent = live.root  # the old master is gone for good
                if parent in live:
                    if inc is None:
                        live.add_subtree(parent, cost, snapshot)
                    else:
                        inc.graft(parent, cost, snapshot.copy())
                        live.add_subtree(parent, cost, snapshot)
                    rejoined.append(node)
                    changed = True
                    epoch_nodes = (node,)
                else:
                    rejoins_skipped.append(node)
        elif kind == "failover":
            old_root = live.root
            candidates = [
                child for child in live.children_by_bandwidth(old_root)
                if alive_at(child, trigger)
            ]
            if not candidates:
                raise FaultError(
                    "root failover with no live child to elect — the "
                    "platform is gone"
                )
            new_root_name = candidates[0]
            if inc is None:
                live.failover_root(new_root_name)
            else:
                inc.failover(new_root_name)
                live.failover_root(new_root_name)
            failover_done = True
            changed = True
            epoch_nodes = (new_root_name,)

        if not changed:
            continue

        # --- re-solve the mutated platform -----------------------------
        new_result = inc.solve() if inc is not None else bw_first(live.copy())
        snapshot = live.copy()

        # --- spans: narrate the epoch ----------------------------------
        renegotiate_span = None
        eid = None
        if spans_on:
            from ..telemetry.live import epoch_id as _epoch_id

            eid = _epoch_id(run_trace, len(epochs))
            if recovery_span is None:
                recovery_span = telemetry.begin_span(
                    "recovery", start=min(t_first_crash, trigger),
                    node=original_root, crashes=len(plan.crashes),
                    trace=run_trace,
                )
            if kind == "prune":
                telemetry.record_span(
                    "detect", wave_first, trigger, node=original_root,
                    parent=recovery_span, epoch=eid,
                    crashed=" ".join(str(n) for n in epoch_nodes),
                )
                telemetry.record_span(
                    "prune", start, start, node=original_root,
                    parent=recovery_span, epoch=eid,
                    removed=sum(len(stash[n][2]) for n in epoch_nodes),
                )
            elif kind == "quarantine":
                telemetry.record_span(
                    "quarantine", trigger, trigger, node=original_root,
                    parent=recovery_span, epoch=eid, child=epoch_nodes[0],
                )
                telemetry.record_span(
                    "prune", start, start, node=original_root,
                    parent=recovery_span, epoch=eid,
                    removed=len(stash[epoch_nodes[0]][2]),
                )
            elif kind == "rejoin":
                telemetry.record_span(
                    "rejoin", trigger, trigger, node=original_root,
                    parent=recovery_span, epoch=eid, child=epoch_nodes[0],
                )
                telemetry.record_span(
                    "graft", start, start, node=original_root,
                    parent=recovery_span, epoch=eid, grafted=epoch_nodes[0],
                )
            elif kind == "failover":
                telemetry.record_span(
                    "detect", payload, trigger, node=original_root,
                    parent=recovery_span, epoch=eid, crashed=str(original_root),
                )
                telemetry.record_span(
                    "elect", start, start, node=new_root_name,
                    parent=recovery_span, epoch=eid, elected=new_root_name,
                )
            renegotiate_span = telemetry.begin_span(
                "renegotiate", start=start, node=live.root,
                parent=recovery_span, epoch=eid, kind=kind,
            )

        # --- renegotiate over the surviving platform -------------------
        epoch_net = None
        if runtime is not None:
            # the survivors re-negotiate on the real asyncio runtime; map
            # the result back onto the virtual timeline analytically
            # (loss-free sequential protocol: the sum of message latencies)
            from ..runtime import Runtime, sequential_completion_time

            renegotiation = Runtime(
                snapshot, transport=runtime, retry=policy,
                trace_id=run_trace,
            ).run()
            vtime = sequential_completion_time(
                renegotiation, latency_factor=latency_factor
            )
        else:
            epoch_net = FaultyNetwork(
                snapshot, plan, latency_factor=latency_factor,
                time_offset=start, quarantine_after=quarantine_after,
            )
            renegotiation = run_protocol(
                snapshot,
                network=epoch_net,
                retry=policy,
                telemetry=telemetry,
                span_parent=renegotiate_span,
                reference=new_result,
                trace_id=run_trace,
            )
            vtime = renegotiation.completion_time

        # --- place the switch ------------------------------------------
        ready = start + vtime
        if kind == "rejoin" and prev_switch is not None:
            # splice on the running schedule's period grid: the root's
            # release chain is anchored at the previous switch, so the
            # next boundary at or after readiness is anchor + k·T
            k = max(1, math.ceil((ready - prev_switch) / current_t))
            switch = prev_switch + k * current_t
        else:
            switch = ready

        new_allocation = from_bw_first(new_result)
        if inc is None:
            new_periods = tree_periods(new_allocation)
            new_schedules = build_schedules(new_allocation,
                                            periods=new_periods)
        else:
            new_periods, new_schedules = inc.schedule_builder().build(
                new_allocation
            )
        new_t = global_period(new_periods, telemetry=telemetry, tree=snapshot)

        if spans_on:
            telemetry.end_span(renegotiate_span, end=switch,
                               messages=renegotiation.messages)
            telemetry.record_span("switch", switch, switch,
                                  node=live.root, parent=recovery_span,
                                  epoch=eid,
                                  throughput=new_allocation.throughput)

        # --- analytic actions for the simulation -----------------------
        # every renegotiation transaction costs one control job on the
        # proposing parent's send port and one on the acknowledging child's
        jobs = []
        for node, actor in renegotiation.actors.items():
            for child, _beta, _theta in actor.transactions:
                latency = snapshot.c(child) * latency_factor
                jobs.append((node, latency))
                jobs.append((child, latency))
        port_jobs.append((start, jobs))
        switches.append((
            switch,
            new_root_name if kind == "failover" else None,
            dict(new_schedules),
            dict(new_periods),
        ))

        # --- hostile links discovered during this epoch ----------------
        if epoch_net is not None:
            corrupted_total += epoch_net.corrupted
            for child, declared in epoch_net.quarantined.items():
                if child not in quarantine_pushed:
                    quarantine_pushed.add(child)
                    push(declared, "quarantine", child)

        # --- bookkeeping ------------------------------------------------
        octets = renegotiation.telemetry.value("runtime.tcp.octets")
        epoch_bytes = octets if octets else renegotiation.bytes
        reneg_messages += renegotiation.messages
        reneg_bytes += epoch_bytes
        retransmissions += renegotiation.retransmissions
        dropped += renegotiation.dropped
        duplicated += renegotiation.duplicated
        epochs.append(EpochReport(
            kind=kind,
            nodes=epoch_nodes,
            t_trigger=trigger,
            t_start=start,
            t_switched=switch,
            optimum=new_result.throughput,
            messages=renegotiation.messages,
            bytes=epoch_bytes,
        ))
        prev_switch = switch
        current_t = new_t
        final_result = new_result
        final_allocation = new_allocation

    t_switched = prev_switch if prev_switch is not None else ZERO
    t_detect = (
        max(planned_detection.values()) if planned_detection
        else (epochs[-1].t_trigger if epochs else ZERO)
    )
    horizon = t_switched + current_t * (settle_periods + after_periods)
    if spans_on and recovery_span is not None:
        telemetry.end_span(recovery_span, end=t_switched)

    # ------------------------------------------------------------------
    # the supervised simulation
    # ------------------------------------------------------------------
    sim = Simulation(
        tree.copy(), dict(old_schedules), dict(old_periods), horizon=horizon,
        max_events=max_events, telemetry=telemetry, kernel=kernel,
    )
    apply_to_simulation(sim, plan)  # crashes, rejoins, failover, windows
    monitor = HeartbeatMonitor(
        sim, interval, timeout, until=horizon
    ).start()

    def make_injection(jobs):
        def inject() -> None:
            for node, latency in jobs:
                sim.inject_control(node, latency)
        return inject

    def make_switch(elected, schedules, periods):
        def flip() -> None:
            if elected is not None:
                sim.failover_root(elected)
            sim.reconfigure(schedules, periods)
        return flip

    for start, jobs in port_jobs:
        sim.engine.schedule_at(start, make_injection(jobs))
    for switch, elected, schedules, periods in switches:
        sim.engine.schedule_at(switch, make_switch(elected, schedules,
                                                   periods))

    result = sim.run()

    # the analytically planned detection must match the live detector —
    # a mismatch means the fault model and the monitor disagree (a bug)
    if dict(monitor.detected) != planned_detection:
        raise FaultError(
            f"detector declared {dict(monitor.detected)}, "
            f"planned {planned_detection}"
        )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def rate(lo: Fraction, hi: Fraction) -> Optional[Fraction]:
        if hi <= lo:
            return None
        return measured_rate(result.trace, lo, hi)

    rate_before = rate(ZERO, t_first_crash)
    rate_after = measured_rate(
        result.trace, horizon - current_t * after_periods, horizon
    )
    rate_during = (
        measured_rate(result.trace, t_first_crash, t_switched)
        if t_switched > t_first_crash else rate_after
    )

    w = as_fraction(window) if window is not None else old_t
    timeline: List[Tuple[Fraction, Fraction]] = []
    start = ZERO
    stop = result.stop_time if result.stop_time is not None else result.end_time
    while start + w <= stop:  # the wind-down tail is not part of the story
        timeline.append((start, measured_rate(result.trace, start, start + w)))
        start += w

    view = Registry()  # per-report backing store for the tally attributes
    tallies = (
        ("recovery.tasks_lost", result.tasks_lost),
        ("recovery.heartbeats", monitor.heartbeats),
        ("recovery.renegotiation_messages", reneg_messages),
        ("recovery.renegotiation_bytes", reneg_bytes),
        ("recovery.retransmissions", retransmissions),
        ("recovery.dropped", dropped),
        ("recovery.duplicated", duplicated),
        ("recovery.corrupted", corrupted_total),
        ("recovery.epochs", len(epochs)),
        ("recovery.rejoins", len(rejoined)),
        ("recovery.rejoins_skipped", len(rejoins_skipped)),
        ("recovery.failovers", 1 if failover_done else 0),
        ("recovery.quarantines", len(quarantined_children)),
    )
    for registry in ((view,) if telemetry is None else (view, telemetry)):
        for name, amount in tallies:
            registry.counter(name).inc(amount)
        registry.gauge("recovery.t_first_crash").set(t_first_crash)
        registry.gauge("recovery.t_detect").set(t_detect)
        registry.gauge("recovery.t_switched").set(t_switched)

    return RecoveryReport(
        old_optimum=old_allocation.throughput,
        new_optimum=final_allocation.throughput,
        rate_before=rate_before,
        rate_during=rate_during,
        rate_after=rate_after,
        t_first_crash=t_first_crash,
        t_detect=t_detect,
        t_switched=t_switched,
        detected_at=dict(monitor.detected),
        survivors=live,
        timeline=tuple(timeline),
        result=result,
        telemetry=view,
        epochs=tuple(epochs),
        quarantined=tuple(quarantined_children),
        rejoined=tuple(rejoined),
        rejoins_skipped=tuple(rejoins_skipped),
        new_root=new_root_name,
    )
