"""Self-healing supervision: crash → detect → prune → re-negotiate → switch.

:func:`resilient_run` stages the full fault-recovery story inside one
discrete-event simulation of the paper's platform:

1. the platform runs the schedule negotiated for the full tree (the initial
   negotiation itself crosses the lossy control plane of the fault plan,
   surviving drops and duplicates through at-least-once retransmission);
2. at the plan's crash times, nodes fail fail-stop — their buffered tasks
   are destroyed, their subtrees starve, and the achieved rate degrades;
3. the root's :class:`~repro.faults.detect.HeartbeatMonitor` declares each
   dead node ``interval·⌈crash/interval⌉ + timeout`` into the run;
4. once every crash is declared, the root prunes the dead subtrees
   (:meth:`~repro.platform.tree.Tree.without_subtrees`) and re-runs the
   BW-First negotiation on the survivors — over the same lossy control
   plane, with the negotiation's control messages occupying the very send
   ports that carry tasks;
5. when the root's acknowledgment arrives, every surviving node switches to
   the new event-driven schedule in place, and the throughput recovers to
   **exactly** the BW-First optimum of the pruned tree (Proposition 2 on
   the survivors — asserted by the protocol runner, measured again by the
   report).

The run is deterministic end to end: the same plan (same seed) produces the
identical trace, detection times, message counts and recovery timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable, List, Mapping, Optional, Tuple

from ..analysis.throughput import measured_rate
from ..core.allocation import from_bw_first
from ..core.bwfirst import bw_first
from ..core.incremental import IncrementalSolver, resolve_solver
from ..core.rates import as_fraction
from ..exceptions import FaultError
from ..platform.tree import Tree
from ..protocol.retry import RetryPolicy
from ..protocol.runner import ProtocolResult, run_protocol
from ..schedule.eventdriven import build_schedules
from ..schedule.periods import global_period, tree_periods
from ..sim.simulator import Simulation
from ..telemetry.core import Registry
from .detect import HeartbeatMonitor, detection_time
from .inject import FaultyNetwork, apply_to_simulation
from .plan import FaultPlan


@dataclass(frozen=True)
class RecoveryReport:
    """Everything one self-healing run produced.

    Rates are exact rationals measured on the trace; ``rate_after`` equals
    ``new_optimum`` once the switched schedule reaches steady state.

    The run's tallies (tasks lost, heartbeat rounds, re-negotiation
    messages/bytes, retransmissions, control-plane faults) are telemetry
    counters in ``telemetry``; the historical attributes read from it.
    """

    old_optimum: Fraction  # BW-First throughput of the full tree
    new_optimum: Fraction  # BW-First throughput of the pruned tree
    rate_before: Optional[Fraction]  # achieved rate before the first crash
    rate_during: Fraction  # achieved rate from first crash to the switch
    rate_after: Fraction  # achieved rate of the settled new schedule
    t_first_crash: Fraction
    t_detect: Fraction  # when the last crash was declared
    t_switched: Fraction  # when the new schedule took over
    detected_at: Mapping[Hashable, Fraction]  # declaration time per crash
    survivors: Tree
    timeline: Tuple[Tuple[Fraction, Fraction], ...]  # (window start, rate)
    result: object = None  # the full SimulationResult (trace inspection)
    telemetry: Registry = field(default_factory=Registry, repr=False)

    @property
    def tasks_lost(self) -> int:
        """Tasks destroyed by the crashes (incl. in flight)."""
        return self.telemetry.value("recovery.tasks_lost")

    @property
    def heartbeats(self) -> int:
        """Monitoring rounds the detector ran."""
        return self.telemetry.value("recovery.heartbeats")

    @property
    def renegotiation_messages(self) -> int:
        return self.telemetry.value("recovery.renegotiation_messages")

    @property
    def renegotiation_bytes(self) -> int:
        return self.telemetry.value("recovery.renegotiation_bytes")

    @property
    def retransmissions(self) -> int:
        """Proposals retransmitted across both negotiations."""
        return self.telemetry.value("recovery.retransmissions")

    @property
    def dropped(self) -> int:
        """Control messages the fault plan destroyed."""
        return self.telemetry.value("recovery.dropped")

    @property
    def duplicated(self) -> int:
        """Control messages the fault plan duplicated."""
        return self.telemetry.value("recovery.duplicated")

    @property
    def negotiation_wallclock(self) -> Fraction:
        """Time between declaring the last death and switching schedules."""
        return self.t_switched - self.t_detect

    @property
    def recovery(self) -> Fraction:
        """Recovered rate as a fraction of the pruned tree's optimum."""
        if self.new_optimum == 0:
            return Fraction(1)
        return self.rate_after / self.new_optimum


def resilient_run(
    tree: Tree,
    plan: FaultPlan,
    heartbeat_interval=Fraction(1),
    detection_timeout=Fraction(1, 2),
    retry: Optional[RetryPolicy] = None,
    latency_factor=Fraction(1, 100),
    settle_periods: int = 2,
    after_periods: int = 6,
    window=None,
    max_events: int = 5_000_000,
    telemetry: Optional[Registry] = None,
    runtime: Optional[str] = None,
    solver=None,
) -> RecoveryReport:
    """Run *tree* under *plan* with automatic detection and re-negotiation.

    * *heartbeat_interval* / *detection_timeout* parameterize the
      :class:`~repro.faults.detect.HeartbeatMonitor`;
    * *retry* is the at-least-once policy for both negotiations (default:
      :class:`~repro.protocol.retry.RetryPolicy()`);
    * the run continues for *settle_periods* + *after_periods* global
      periods of the **new** schedule after the switch; ``rate_after`` is
      measured over the last *after_periods* of them (the settle periods
      absorb the drain of stale in-flight tasks);
    * *window* sets the timeline resolution (default: the old global
      period);
    * *max_events* bounds the supervised simulation.  Exact measurement
      costs whole global periods of the pruned tree, and global periods
      are LCMs — on adversarial rational rates they (and hence the event
      count) can explode.  Raise the bound for such platforms, or lower
      *after_periods* / *settle_periods* to shorten the horizon.

    The plan must contain at least one crash — with nothing to recover
    from, use :func:`~repro.sim.simulator.simulate` directly.

    *telemetry* threads one :class:`~repro.telemetry.core.Registry` through
    the whole story: both negotiations record their transaction spans into
    it (the re-negotiation's nested under the ``renegotiate`` phase and
    shifted to its virtual start time), the supervised simulation its
    per-node counters, and the recovery itself a span tree
    ``recovery → detect / prune / renegotiate / switch`` whose boundaries
    are the report's ``t_first_crash`` / ``t_detect`` / ``t_switched``.

    *runtime* (``"inproc"`` or ``"tcp"``) routes the **re-negotiation**
    through the real asyncio runtime of :mod:`repro.runtime` instead of
    the virtual-time simulation: the survivors negotiate as genuinely
    concurrent actors over actual queues or loopback sockets, and the
    recovered schedule is built from that live result.  The supervised
    simulation still needs a *virtual* duration for the negotiation
    window, so the switch time is derived analytically
    (:func:`~repro.runtime.runtime.sequential_completion_time` under this
    run's latency model) — the exact virtual time at which the loss-free
    sequential protocol delivers the root's acknowledgment, so the
    recovery timeline stays deterministic.  Note the simulated path's
    ``t_switched`` is *later* than this: its event queue also drains the
    retry timers armed for proposals that were answered normally, and the
    switch waits for the queue, not just the ack.  The initial
    negotiation keeps crossing the plan's lossy simulated control plane
    either way.  Transaction spans of a runtime re-negotiation are not
    recorded into *telemetry* (their wall-clock timestamps would not lie
    on the virtual timeline); its tallies still are.

    *solver* picks the centralised reference solver (see
    :func:`~repro.core.incremental.resolve_solver`): the default
    ``"incremental"`` solves the full tree once, **prunes the crashed
    subtrees in place** and re-solves only the dirty path from cache —
    also handing both negotiations their verification reference so neither
    re-runs ``bw_first``.  ``"full"`` restores the two from-scratch solves;
    an :class:`~repro.core.incremental.IncrementalSolver` instance (seeded
    with *tree*) carries its cache across calls.  Either way the rates are
    exactly equal — the solvers are interchangeable by construction.
    """
    plan.validate(tree)
    if not plan.crashes:
        raise FaultError("the plan crashes nothing — nothing to recover from")
    policy = retry if retry is not None else RetryPolicy()
    interval = as_fraction(heartbeat_interval)
    timeout = as_fraction(detection_timeout)

    # ------------------------------------------------------------------
    # negotiations (latency-modelled, over the lossy control plane)
    # ------------------------------------------------------------------
    spans_on = telemetry is not None and telemetry.enabled

    inc = resolve_solver(solver, tree, telemetry=telemetry)
    old_result = bw_first(tree) if inc is None else inc.solve()

    initial = run_protocol(
        tree,
        network=FaultyNetwork(tree, plan, latency_factor=latency_factor),
        retry=policy,
        telemetry=telemetry,
        reference=old_result,
    )

    old_allocation = from_bw_first(old_result)
    if inc is None:
        old_periods = tree_periods(old_allocation)
        old_schedules = build_schedules(old_allocation, periods=old_periods)
    else:
        # fragment-caching reconstruction: the post-crash rebuild below
        # then recomputes only the root-to-crash paths
        old_periods, old_schedules = inc.schedule_builder().build(old_allocation)
    old_t = global_period(old_periods, telemetry=telemetry, tree=tree)

    crashed = list(plan.crashed_nodes)
    t_first_crash = min(crash.time for crash in plan.crashes)
    planned_detection = {
        crash.node: detection_time(crash.time, interval, timeout)
        for crash in plan.crashes
    }
    t_detect = max(planned_detection.values())

    survivors = tree.without_subtrees(crashed)
    if inc is None:
        new_result = bw_first(survivors)
    else:
        inc.prune(*crashed)  # dirty-path re-fingerprint, cache kept
        new_result = inc.solve()

    recovery_span = renegotiate_span = None
    if spans_on:
        recovery_span = telemetry.begin_span(
            "recovery", start=t_first_crash, node=tree.root,
            crashes=len(crashed),
        )
        telemetry.record_span(
            "detect", t_first_crash, t_detect, node=tree.root,
            parent=recovery_span,
            crashed=" ".join(sorted(str(n) for n in crashed)),
        )
        telemetry.record_span(
            "prune", t_detect, t_detect, node=tree.root,
            parent=recovery_span, removed=len(tree) - len(survivors),
        )
        renegotiate_span = telemetry.begin_span(
            "renegotiate", start=t_detect, node=tree.root,
            parent=recovery_span,
        )

    if runtime is not None:
        # the survivors re-negotiate on the real asyncio runtime; map the
        # result back onto the virtual timeline analytically (loss-free
        # sequential protocol: the sum of its message latencies)
        from ..runtime import Runtime, sequential_completion_time

        renegotiation = Runtime(
            survivors, transport=runtime, retry=policy
        ).run()
        renegotiation_virtual_time = sequential_completion_time(
            renegotiation, latency_factor=latency_factor
        )
    else:
        renegotiation = run_protocol(
            survivors,
            network=FaultyNetwork(
                survivors, plan, latency_factor=latency_factor,
                time_offset=t_detect,
            ),
            retry=policy,
            telemetry=telemetry,
            span_parent=renegotiate_span,
            reference=new_result,
        )
        renegotiation_virtual_time = renegotiation.completion_time

    new_allocation = from_bw_first(new_result)
    if inc is None:
        new_periods = tree_periods(new_allocation)
        new_schedules = build_schedules(new_allocation, periods=new_periods)
    else:
        new_periods, new_schedules = inc.schedule_builder().build(new_allocation)
    new_t = global_period(new_periods, telemetry=telemetry, tree=survivors)

    t_switched = t_detect + renegotiation_virtual_time
    horizon = t_switched + new_t * (settle_periods + after_periods)

    if spans_on:
        telemetry.end_span(renegotiate_span, end=t_switched,
                           messages=renegotiation.messages)
        telemetry.record_span("switch", t_switched, t_switched,
                              node=tree.root, parent=recovery_span,
                              throughput=new_allocation.throughput)
        telemetry.end_span(recovery_span, end=t_switched)

    # ------------------------------------------------------------------
    # the supervised simulation
    # ------------------------------------------------------------------
    sim = Simulation(
        tree, dict(old_schedules), dict(old_periods), horizon=horizon,
        max_events=max_events, telemetry=telemetry,
    )
    apply_to_simulation(sim, plan)  # crashes + degradation windows
    monitor = HeartbeatMonitor(
        sim, interval, timeout, until=horizon
    ).start()

    def occupy_ports() -> None:
        # every re-negotiation transaction costs one control job on the
        # proposing parent's send port and one on the acknowledging child's
        for node, actor in renegotiation.actors.items():
            for child, _beta, _theta in actor.transactions:
                latency = survivors.c(child) * Fraction(latency_factor)
                sim.inject_control(node, latency)
                sim.inject_control(child, latency)

    sim.engine.schedule_at(t_detect, occupy_ports)
    sim.engine.schedule_at(
        t_switched, lambda: sim.reconfigure(new_schedules, new_periods)
    )

    result = sim.run()

    # the analytically planned detection must match the live detector —
    # a mismatch means the fault model and the monitor disagree (a bug)
    if dict(monitor.detected) != planned_detection:
        raise FaultError(
            f"detector declared {dict(monitor.detected)}, "
            f"planned {planned_detection}"
        )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def rate(lo: Fraction, hi: Fraction) -> Optional[Fraction]:
        if hi <= lo:
            return None
        return measured_rate(result.trace, lo, hi)

    rate_before = rate(Fraction(0), t_first_crash)
    rate_during = measured_rate(result.trace, t_first_crash, t_switched)
    rate_after = measured_rate(
        result.trace, horizon - new_t * after_periods, horizon
    )

    w = as_fraction(window) if window is not None else old_t
    timeline: List[Tuple[Fraction, Fraction]] = []
    start = Fraction(0)
    stop = result.stop_time if result.stop_time is not None else result.end_time
    while start + w <= stop:  # the wind-down tail is not part of the story
        timeline.append((start, measured_rate(result.trace, start, start + w)))
        start += w

    view = Registry()  # per-report backing store for the tally attributes
    tallies = (
        ("recovery.tasks_lost", result.tasks_lost),
        ("recovery.heartbeats", monitor.heartbeats),
        ("recovery.renegotiation_messages", renegotiation.messages),
        ("recovery.renegotiation_bytes", renegotiation.bytes),
        ("recovery.retransmissions",
         initial.retransmissions + renegotiation.retransmissions),
        ("recovery.dropped", initial.dropped + renegotiation.dropped),
        ("recovery.duplicated", initial.duplicated + renegotiation.duplicated),
    )
    for registry in ((view,) if telemetry is None else (view, telemetry)):
        for name, amount in tallies:
            registry.counter(name).inc(amount)
        registry.gauge("recovery.t_first_crash").set(t_first_crash)
        registry.gauge("recovery.t_detect").set(t_detect)
        registry.gauge("recovery.t_switched").set(t_switched)

    return RecoveryReport(
        old_optimum=old_allocation.throughput,
        new_optimum=new_allocation.throughput,
        rate_before=rate_before,
        rate_during=rate_during,
        rate_after=rate_after,
        t_first_crash=t_first_crash,
        t_detect=t_detect,
        t_switched=t_switched,
        detected_at=dict(monitor.detected),
        survivors=survivors,
        timeline=tuple(timeline),
        result=result,
        telemetry=view,
    )
