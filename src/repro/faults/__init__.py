"""Fault injection and self-healing for the BW-First platform.

The robustness layer the paper's Section 5 sketches but never builds:

* :mod:`~repro.faults.plan` — deterministic, serializable
  :class:`FaultPlan` descriptions (crashes, rejoins, root failover,
  control-message loss/duplication/corruption, transient link
  degradation);
* :mod:`~repro.faults.inject` — :class:`FaultyNetwork` applying a plan to
  the protocol transport, :func:`apply_to_simulation` applying it to the
  steady-state simulator;
* :mod:`~repro.faults.detect` — deterministic heartbeat failure detection;
* :mod:`~repro.faults.recovery` — :func:`resilient_run`, the epoch-driven
  supervisor covering the whole churn lifecycle (prune, failover,
  quarantine, rejoin) and reporting the exact throughput timeline;
* :mod:`~repro.faults.chaos` — seeded random fault sequences and the
  sweep gate asserting every one converges back to the exact optimum of
  whatever platform survives.
"""

from .chaos import ChaosOutcome, ChaosSummary, chaos_case, chaos_sweep, run_case
from .detect import HeartbeatMonitor, detection_time
from .inject import FaultyNetwork, LinkFaultDecider, apply_to_simulation
from .plan import (
    Corruption,
    FaultPlan,
    LinkDegradation,
    LinkFaults,
    NodeCrash,
    NodeRejoin,
    RootFailover,
    random_plan,
)
from .recovery import EpochReport, RecoveryReport, resilient_run

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "NodeRejoin",
    "RootFailover",
    "Corruption",
    "LinkFaults",
    "LinkDegradation",
    "random_plan",
    "FaultyNetwork",
    "LinkFaultDecider",
    "apply_to_simulation",
    "HeartbeatMonitor",
    "detection_time",
    "EpochReport",
    "RecoveryReport",
    "resilient_run",
    "ChaosOutcome",
    "ChaosSummary",
    "chaos_case",
    "chaos_sweep",
    "run_case",
]
