"""Fault injection and self-healing for the BW-First platform.

The robustness layer the paper's Section 5 sketches but never builds:

* :mod:`~repro.faults.plan` — deterministic, serializable
  :class:`FaultPlan` descriptions (crashes, control-message loss and
  duplication, transient link degradation);
* :mod:`~repro.faults.inject` — :class:`FaultyNetwork` applying a plan to
  the protocol transport, :func:`apply_to_simulation` applying it to the
  steady-state simulator;
* :mod:`~repro.faults.detect` — deterministic heartbeat failure detection;
* :mod:`~repro.faults.recovery` — :func:`resilient_run`, the supervisor
  staging crash → detect → prune → re-negotiate → switch and reporting the
  exact throughput timeline.
"""

from .detect import HeartbeatMonitor, detection_time
from .inject import FaultyNetwork, LinkFaultDecider, apply_to_simulation
from .plan import FaultPlan, LinkDegradation, LinkFaults, NodeCrash, random_plan
from .recovery import RecoveryReport, resilient_run

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "LinkFaults",
    "LinkDegradation",
    "random_plan",
    "FaultyNetwork",
    "LinkFaultDecider",
    "apply_to_simulation",
    "HeartbeatMonitor",
    "detection_time",
    "RecoveryReport",
    "resilient_run",
]
