"""Seeded chaos: random platforms under random fault sequences, gated exact.

The chaos gate is the repository's standing proof that self-healing is
*complete*: for any generated fault sequence — crashes, rejoins, a root
failover, hostile (corrupting) links, background loss — the supervised run
of :func:`~repro.faults.recovery.resilient_run` must settle back to
**exactly** (``Fraction`` equality, no tolerance) the BW-First optimum of
whatever platform survived, verified against a from-scratch centralised
solve of the survivor tree.

Everything is seeded: :func:`chaos_case` derives the platform and the
plan from one integer through the same tagged-stream construction as
:class:`~repro.faults.plan.FaultPlan`, so a sweep is reproducible
bit-for-bit and a failing sequence is re-runnable in isolation by seed.

Generator invariants (why every sequence *can* converge):

* corruption rates stay in the retries-win regime (≤ 2/5) — a link
  corrupting nearly every frame is indistinguishable from a dead child
  and must be modelled as a crash, not a hostile link;
* the root keeps at least one never-crashed child, so a failover always
  has a live candidate to elect;
* under a failover, only links at depth ≥ 2 are hostile — quarantining
  the only electable child would leave no master to elect;
* every rejoin happens at or after the declaration of its own death;
* the failover, when present, is the last trigger: the paper's procedure
  elects once (a crash of the *acting* master is out of scope).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from ..core.allocation import from_bw_first
from ..core.bwfirst import bw_first
from ..exceptions import FaultError
from ..platform.tree import Tree
from ..protocol.retry import RetryPolicy
from ..schedule.periods import global_period, tree_periods
from .detect import detection_time
from .plan import Corruption, FaultPlan, NodeCrash, NodeRejoin, RootFailover
from .recovery import RecoveryReport, resilient_run

#: heartbeat parameters of every chaos run (kept explicit so rejoin times
#: can be generated at or after their crash's declaration)
INTERVAL = Fraction(1)
TIMEOUT = Fraction(1, 2)

_WEIGHTS = (Fraction(1), Fraction(2), Fraction(3), Fraction(4), Fraction(6))
_COSTS = (Fraction(1, 2), Fraction(1), Fraction(2), Fraction(3))
_CORRUPT_RATES = (Fraction(1, 5), Fraction(3, 10), Fraction(2, 5))
_DROP_RATES = (Fraction(0), Fraction(1, 25), Fraction(1, 10))

#: reject platforms whose steady-state story is too expensive to measure
#: exactly — global periods are LCMs and can explode on adversarial rates
_MAX_GLOBAL_PERIOD = 64


@dataclass(frozen=True)
class ChaosOutcome:
    """One chaos sequence, verified."""

    seed: int
    nodes: int  # platform size
    faults: Tuple[str, ...]  # human-readable fault sequence
    epochs: Tuple[str, ...]  # recovery epochs the supervisor ran
    optimum: Fraction  # from-scratch bw_first of the survivors
    rate_after: Fraction  # measured settled rate
    corrupted: int
    quarantined: Tuple[object, ...]

    @property
    def exact(self) -> bool:
        return self.rate_after == self.optimum


@dataclass(frozen=True)
class ChaosSummary:
    """A whole sweep: per-sequence outcomes plus the headline counts."""

    outcomes: Tuple[ChaosOutcome, ...]

    @property
    def sequences(self) -> int:
        return len(self.outcomes)

    @property
    def exact_count(self) -> int:
        return sum(1 for o in self.outcomes if o.exact)

    @property
    def epoch_kinds(self) -> dict:
        kinds: dict = {}
        for outcome in self.outcomes:
            for kind in outcome.epochs:
                kinds[kind] = kinds.get(kind, 0) + 1
        return kinds

    def to_json(self) -> dict:
        return {
            "sequences": self.sequences,
            "exact": self.exact_count,
            "epoch_kinds": self.epoch_kinds,
            "outcomes": [
                {
                    "seed": o.seed,
                    "nodes": o.nodes,
                    "faults": list(o.faults),
                    "epochs": list(o.epochs),
                    "optimum": str(o.optimum),
                    "rate_after": str(o.rate_after),
                    "corrupted": o.corrupted,
                    "quarantined": [str(q) for q in o.quarantined],
                    "exact": o.exact,
                }
                for o in self.outcomes
            ],
        }


def _random_tree(rng: random.Random, nodes: int) -> Tree:
    """A connected random platform; the root always keeps ≥ 2 children."""
    tree = Tree("P0", rng.choice(_WEIGHTS))
    names = ["P0"]
    for i in range(1, nodes):
        name = f"P{i}"
        # the first two nodes hang off the root (failover needs children);
        # later ones attach anywhere, growing depth
        parent = names[0] if i <= 2 else rng.choice(names)
        tree.add_node(name, rng.choice(_WEIGHTS), parent=parent,
                      c=rng.choice(_COSTS))
        names.append(name)
    return tree


def chaos_case(seed: int) -> Tuple[Tree, FaultPlan, int]:
    """Derive one ``(tree, plan, quarantine_after)`` case from *seed*.

    The platform has 5–8 nodes; the plan always crashes at least one node
    and then mixes, by seeded coin flips: rejoins of the crashed subtrees,
    one root failover (as the final trigger), hostile links with windowed
    or permanent corruption, and background drop/duplication.
    """
    for attempt in itertools.count():
        rng = random.Random(f"chaos|{seed}|{attempt}")
        tree = _random_tree(rng, rng.randint(5, 8))
        allocation = from_bw_first(bw_first(tree.copy()))
        if global_period(tree_periods(allocation)) > _MAX_GLOBAL_PERIOD:
            continue  # steady state too expensive to measure; resample

        names = [n for n in tree.nodes() if n != tree.root]
        root_children = list(tree.children(tree.root))

        # --- crashes: 1-2 non-root nodes, one root child always spared ---
        spared = rng.choice(root_children)
        crashable = [n for n in names if n != spared]
        crashed = rng.sample(crashable, min(rng.randint(1, 2),
                                            len(crashable)))
        crashes = tuple(
            NodeCrash(node, Fraction(rng.randint(4, 16), 4))
            for node in crashed
        )

        # --- rejoins: each crashed subtree returns with probability 1/2 ---
        rejoins = []
        for crash in crashes:
            if rng.random() < Fraction(1, 2):
                declared = detection_time(crash.time, INTERVAL, TIMEOUT)
                rejoins.append(NodeRejoin(
                    crash.node, declared + Fraction(rng.randint(8, 20), 4)
                ))

        last_event = max(
            [crash.time for crash in crashes]
            + [rejoin.time for rejoin in rejoins]
        )

        # --- failover: the master dies after everything else settled ---
        failover = None
        if rng.random() < Fraction(1, 4):
            failover = RootFailover(last_event + 2)

        # --- hostile links ---
        corruptions = []
        deep = [n for n in names
                if tree.parent(n) is not None
                and tree.parent(n) != tree.root]
        hostile_pool = deep if failover is not None else [
            n for n in names if n != spared
        ]
        if hostile_pool and rng.random() < Fraction(1, 2):
            for child in rng.sample(hostile_pool,
                                    min(rng.randint(1, 2),
                                        len(hostile_pool))):
                rate = rng.choice(_CORRUPT_RATES)
                if rng.random() < Fraction(1, 3):
                    # a bounded hostile window instead of a permanent one
                    start = Fraction(rng.randint(0, 8), 4)
                    corruptions.append(Corruption(child, rate, start=start,
                                                  end=start + rng.randint(2, 6)))
                else:
                    corruptions.append(Corruption(child, rate))

        plan = FaultPlan(
            crashes=crashes,
            rejoins=tuple(rejoins),
            failover=failover,
            corruptions=tuple(corruptions),
            drop=rng.choice(_DROP_RATES),
            duplicate=rng.choice((Fraction(0), Fraction(1, 25))),
            seed=seed,
        )
        try:
            plan.validate(tree)
        except FaultError:
            continue  # e.g. a crashed ancestor swallowed a corrupted link
        return tree, plan, rng.choice((1, 2, 3))


def run_case(seed: int, telemetry=None) -> Tuple[ChaosOutcome, RecoveryReport]:
    """Run one chaos sequence and verify it against a from-scratch solve.

    *telemetry* threads a :class:`~repro.telemetry.core.Registry` into the
    supervised run — pass a
    :class:`~repro.telemetry.live.LiveRegistry` to stream the case's
    epoch spans and counters onto a bus (the dashboard's workload does).
    """
    tree, plan, quarantine_after = chaos_case(seed)
    nodes = len(tree)
    report = resilient_run(
        tree, plan,
        heartbeat_interval=INTERVAL,
        detection_timeout=TIMEOUT,
        quarantine_after=quarantine_after,
        settle_periods=3,
        telemetry=telemetry,
        # chaos stacks drop AND corruption on one link; a deep retry budget
        # keeps every negotiation in the retries-win regime (the chance of
        # 21 consecutive losses at the generator's worst rates is ~1e-7)
        retry=RetryPolicy(max_retries=20),
    )
    # the gate: the settled rate equals the survivors' from-scratch optimum
    reference = bw_first(report.survivors.copy()).throughput
    faults = [f"crash:{c.node}@{c.time}" for c in plan.crashes]
    faults += [f"rejoin:{r.node}@{r.time}" for r in plan.rejoins]
    if plan.failover is not None:
        faults.append(f"failover@{plan.failover.time}")
    faults += [f"corrupt:{c.child}~{c.rate}" for c in plan.corruptions]
    outcome = ChaosOutcome(
        seed=seed,
        nodes=nodes,
        faults=tuple(faults),
        epochs=tuple(e.kind for e in report.epochs),
        optimum=reference,
        rate_after=report.rate_after,
        corrupted=report.corrupted,
        quarantined=report.quarantined,
    )
    return outcome, report


@dataclass(frozen=True)
class DataPlaneOutcome:
    """One data-plane chaos case: a live plane under payload faults."""

    seed: int
    nodes: int
    transport: str
    generated: int
    completed: int
    duplicates: int
    resends: int
    resend_requests: int
    injected_drops: int
    injected_corruptions: int
    occupancy_ok: bool

    @property
    def exact(self) -> bool:
        """Exactly-once effect: nothing lost, nothing run twice, buffers
        within the analytic bound."""
        return (self.completed == self.generated
                and self.duplicates == 0
                and self.occupancy_ok)


@dataclass(frozen=True)
class DataPlaneSummary:
    """A whole data-plane sweep."""

    outcomes: Tuple[DataPlaneOutcome, ...]

    @property
    def cases(self) -> int:
        return len(self.outcomes)

    @property
    def exact_count(self) -> int:
        return sum(1 for o in self.outcomes if o.exact)

    @property
    def faults_injected(self) -> int:
        return sum(o.injected_drops + o.injected_corruptions
                   for o in self.outcomes)

    def to_json(self) -> dict:
        return {
            "cases": self.cases,
            "exact": self.exact_count,
            "faults_injected": self.faults_injected,
            "outcomes": [
                {
                    "seed": o.seed,
                    "nodes": o.nodes,
                    "transport": o.transport,
                    "generated": o.generated,
                    "completed": o.completed,
                    "duplicates": o.duplicates,
                    "resends": o.resends,
                    "resend_requests": o.resend_requests,
                    "injected_drops": o.injected_drops,
                    "injected_corruptions": o.injected_corruptions,
                    "occupancy_ok": o.occupancy_ok,
                    "exact": o.exact,
                }
                for o in self.outcomes
            ],
        }


_TASK_DROPS = (Fraction(1, 12), Fraction(1, 8), Fraction(1, 6))
_TASK_CORRUPTS = (Fraction(0), Fraction(1, 10), Fraction(1, 8))


def data_plane_case(seed: int) -> Tuple[Tree, FaultPlan]:
    """One seeded ``(tree, plan)`` data-plane case: a random 4–6 node
    platform plus a payload fault plan that always drops *and* may also
    corrupt task frames (both in the retries-win regime)."""
    rng = random.Random(f"chaos-data|{seed}")
    tree = _random_tree(rng, rng.randint(4, 6))
    plan = FaultPlan(
        seed=seed,
        task_drop=rng.choice(_TASK_DROPS),
        task_corrupt=rng.choice(_TASK_CORRUPTS),
    )
    return tree, plan


def run_data_plane_case(seed: int, transport: str = "inproc",
                        tasks: int = 40) -> DataPlaneOutcome:
    """Run one data-plane case and return its (unchecked) outcome."""
    from ..taskplane import run_plane

    tree, plan = data_plane_case(seed)
    report = run_plane(tree, transport, max_tasks=tasks, plan=plan,
                       time_scale=0.01, resend_timeout=0.15)
    return DataPlaneOutcome(
        seed=seed,
        nodes=len(tree),
        transport=transport,
        generated=report.generated,
        completed=report.completed,
        duplicates=report.duplicates,
        resends=report.resends,
        resend_requests=report.resend_requests,
        injected_drops=report.injected_drops,
        injected_corruptions=report.injected_corruptions,
        occupancy_ok=report.occupancy_ok(),
    )


def data_plane_sweep(
    cases: int = 10,
    seed: int = 0,
    transport: str = "inproc",
    tasks: int = 40,
    progress: Optional[Callable[[DataPlaneOutcome], None]] = None,
) -> DataPlaneSummary:
    """Seeded payload-fault sweep over live planes; raise on inexactness.

    The data-plane analogue of :func:`chaos_sweep`: where the control
    sweep gates *rates* (Fraction-exact convergence), this gates *task
    accounting* — under dropped and corrupted task frames every case must
    complete exactly the tasks it generated, execute none twice, and keep
    every buffer within its analytic bound.  Case ``i`` uses seed
    ``seed + i`` and reproduces in isolation with
    :func:`run_data_plane_case`.
    """
    outcomes: List[DataPlaneOutcome] = []
    for i in range(cases):
        outcome = run_data_plane_case(seed + i, transport=transport,
                                      tasks=tasks)
        if not outcome.exact:
            raise FaultError(
                f"data-plane chaos seed {outcome.seed}: "
                f"{outcome.completed}/{outcome.generated} completed, "
                f"{outcome.duplicates} duplicated, occupancy_ok="
                f"{outcome.occupancy_ok} (drops={outcome.injected_drops}, "
                f"corruptions={outcome.injected_corruptions})"
            )
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return DataPlaneSummary(outcomes=tuple(outcomes))


def chaos_sweep(
    sequences: int = 100,
    seed: int = 0,
    progress: Optional[Callable[[ChaosOutcome], None]] = None,
    telemetry=None,
) -> ChaosSummary:
    """Run *sequences* seeded chaos cases; raise on the first inexact one.

    Case ``i`` uses seed ``seed + i``, so any failure reproduces in
    isolation with :func:`run_case`.  *progress* (if given) is called with
    each verified :class:`ChaosOutcome` as it completes.  *telemetry*
    threads one registry through every case (see :func:`run_case`).
    """
    outcomes: List[ChaosOutcome] = []
    for i in range(sequences):
        outcome, report = run_case(seed + i, telemetry=telemetry)
        if not outcome.exact:
            raise FaultError(
                f"chaos seed {outcome.seed}: settled at {outcome.rate_after}"
                f", survivors' optimum is {outcome.optimum} "
                f"(faults: {', '.join(outcome.faults)})"
            )
        if report.rate_after != report.new_optimum:
            raise FaultError(
                f"chaos seed {outcome.seed}: report optimum "
                f"{report.new_optimum} disagrees with measured "
                f"{report.rate_after}"
            )
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return ChaosSummary(outcomes=tuple(outcomes))
