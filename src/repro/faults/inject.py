"""Applying a :class:`~repro.faults.plan.FaultPlan` to both execution layers.

* :class:`LinkFaultDecider` turns the plan's probabilities into concrete
  per-message verdicts.  Decisions for **numbered** messages are addressed
  by the message's transaction id (``xid``) and its per-``xid`` occurrence
  count — a retransmission is a fresh draw, but delivery *order* plays no
  part in the address, so a reordering or genuinely concurrent transport
  (:mod:`repro.runtime`) suffers the identical fault trace as the
  deterministic simulated one.  Unnumbered messages (``xid=None``, the
  original fire-and-forget protocol) fall back to the per-link send
  ordinal.
* :class:`FaultyNetwork` wraps the protocol transport: control messages
  crossing a real tree link are dropped or duplicated according to the
  plan's per-link probabilities, and their latency is stretched inside
  degradation windows.
* :func:`apply_to_simulation` arms the steady-state simulator: node crashes
  are scheduled at their virtual times and the plan's degradation windows
  are installed as the simulator's link-time factor.

The virtual-parent link that seeds the root is **never** perturbed — it
models the application invoking its local root, not a network link.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Optional, Tuple

from ..exceptions import ProtocolError
from ..platform.tree import Tree
from ..protocol.messages import Message, wire_size
from ..protocol.network import Network
from ..sim.simulator import Simulation
from .plan import FaultPlan


class LinkFaultDecider:
    """Stateful addressing of a plan's per-message fault decisions.

    One decider serves one run of one transport.  For every message
    crossing a real tree link it produces a ``(drop, duplicate)`` verdict
    pair; both verdicts of a message share one address, so the plan's
    independent ``"drop"`` / ``"duplicate"`` streams line up exactly as
    they did when decisions were keyed by send ordinal.

    The address of a numbered message is
    ``(sender, receiver, "xid", xid, occurrence)`` where *occurrence*
    counts prior transmissions of the same ``xid`` on the same directed
    link — a pure function of the message's own retransmission history,
    immune to cross-transaction reordering.  Unnumbered messages use the
    legacy per-link ordinal address ``(sender, receiver, ordinal)``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: per-directed-link ordinals for unnumbered (xid=None) messages
        self._ordinals: Dict[Tuple[Hashable, Hashable], int] = {}
        #: per-(link, xid) transmission counts for numbered messages
        self._occurrences: Dict[Tuple[Hashable, Hashable, int], int] = {}

    def coordinates(self, message: Message) -> tuple:
        """The decision address of this transmission (consumes one slot)."""
        a, b = message.sender, message.receiver
        xid = getattr(message, "xid", None)
        if xid is None:
            ordinal = self._ordinals.get((a, b), 0)
            self._ordinals[(a, b)] = ordinal + 1
            return (a, b, ordinal)
        occurrence = self._occurrences.get((a, b, xid), 0)
        self._occurrences[(a, b, xid)] = occurrence + 1
        return (a, b, "xid", xid, occurrence)

    def full_verdict_at(
        self, child: Hashable, coordinates: tuple,
        corrupt_rate: Optional[Fraction] = None,
    ) -> Tuple[bool, bool, bool]:
        """``(drop, corrupt, duplicate)`` at already-consumed *coordinates*.

        The three verdicts draw from three independent named streams
        sharing one address, so adding the ``"corrupt"`` stream leaves the
        drop/duplicate trace of every pre-existing plan untouched.
        *corrupt_rate* overrides the plan's static
        :meth:`~repro.faults.plan.FaultPlan.link_corrupt` — the simulated
        network passes the windowed
        :meth:`~repro.faults.plan.FaultPlan.corruption_rate` at its
        virtual now; wall-clock transports have no now and use the static
        rate.
        """
        plan = self.plan
        rate = plan.link_corrupt(child) if corrupt_rate is None else (
            corrupt_rate
        )
        drop = plan.decision("drop", *coordinates) < plan.link_drop(child)
        corrupt = plan.decision("corrupt", *coordinates) < rate
        duplicate = (
            plan.decision("duplicate", *coordinates)
            < plan.link_duplicate(child)
        )
        return drop, corrupt, duplicate

    def full_verdict(
        self, child: Hashable, message: Message,
        corrupt_rate: Optional[Fraction] = None,
    ) -> Tuple[bool, bool, bool]:
        """``(drop, corrupt, duplicate)`` for this transmission."""
        return self.full_verdict_at(
            child, self.coordinates(message), corrupt_rate
        )

    def verdict(self, child: Hashable, message: Message) -> Tuple[bool, bool]:
        """``(drop, duplicate)`` for this transmission over *child*'s link."""
        drop, _corrupt, duplicate = self.full_verdict(child, message)
        return drop, duplicate


class FaultyNetwork(Network):
    """A :class:`~repro.protocol.network.Network` with a lossy control plane.

    Counts the injected faults in ``dropped`` and ``duplicated`` (picked up
    by :class:`~repro.protocol.runner.ProtocolResult`).  Dropped messages
    still count toward ``messages_sent``/``bytes_sent`` — the sender paid
    for the transmission; the receiver just never saw it.

    Hostile plans add the payload-integrity check: a corrupt verdict means
    the receiver's checksum failed, so the message is counted in
    ``corrupted`` and discarded before its handler runs (observably a
    drop, but fed to the quarantine policy).  With *quarantine_after* set,
    K consecutive corrupt frames on a link record the child endpoint in
    ``quarantined`` (child → virtual detection time).  The network itself
    keeps delivering — at-least-once retries still beat a rate below 1, so
    the negotiation converges exactly; the *supervisor* reads
    ``quarantined`` afterwards and enacts the isolation by pruning the
    child at its next recovery epoch, which is what "treated as crashed"
    means here.  (The wall-clock :class:`~repro.runtime.transport.TcpTransport`
    firewall, by contrast, really goes dark — there the parent's retry
    timeouts do the pruning.)
    """

    def __init__(
        self,
        tree: Tree,
        plan: FaultPlan,
        latency_factor=Fraction(1, 100),
        fixed_latency=0,
        time_offset=0,
        quarantine_after: Optional[int] = None,
    ):
        """*time_offset* anchors the network's local clock (which starts at
        0) in the plan's virtual timeline, so degradation windows line up —
        a re-negotiation launched at virtual time ``t`` passes
        ``time_offset=t``."""
        super().__init__(
            tree, latency_factor=latency_factor, fixed_latency=fixed_latency
        )
        if quarantine_after is not None and quarantine_after < 1:
            raise ProtocolError("quarantine_after must be >= 1")
        self.plan = plan
        self.time_offset = Fraction(time_offset)
        self.quarantine_after = quarantine_after
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        #: child endpoint → virtual time its link was declared hostile
        self.quarantined: Dict[Hashable, Fraction] = {}
        self._streaks: Dict[Hashable, int] = {}
        self._decider = LinkFaultDecider(plan)

    def _child_endpoint(self, a: Hashable, b: Hashable) -> Optional[Hashable]:
        """The child side of link ``a↔b``, or ``None`` off the tree."""
        if a not in self.tree or b not in self.tree:
            return None  # virtual-parent traffic: never perturbed
        if self.tree.parent(b) == a:
            return b
        if self.tree.parent(a) == b:
            return a
        return None

    def send(self, message: Message) -> None:
        a, b = message.sender, message.receiver
        child = self._child_endpoint(a, b)
        if child is None:
            super().send(message)
            return
        if b not in self._handlers:
            raise ProtocolError(f"no handler registered for {b!r}")
        # the sender transmitted, whatever the link then does to the message
        self.messages_sent += 1
        self.bytes_sent += wire_size(message)
        now = self.time_offset + self.engine.now
        drop, corrupt, duplicate = self._decider.full_verdict(
            child, message, self.plan.corruption_rate(child, now)
        )
        if drop:
            self.dropped += 1
            return  # never received: the corruption streak is untouched
        if corrupt:
            # integrity check fails at the receiver: count, streak, discard
            self.corrupted += 1
            streak = self._streaks.get(child, 0) + 1
            self._streaks[child] = streak
            if (self.quarantine_after is not None
                    and streak >= self.quarantine_after
                    and child not in self.quarantined):
                self.quarantined[child] = now
            return
        self._streaks[child] = 0
        latency = self.link_latency(a, b) * self.plan.degradation_factor(
            child, now
        )
        handler = self._handlers[b]
        self.engine.schedule_in(latency, lambda: handler(message))
        if duplicate:
            # the spurious copy arrives right behind the original
            self.duplicated += 1
            self.engine.schedule_in(latency, lambda: handler(message))


def apply_to_simulation(sim: Simulation, plan: FaultPlan) -> None:
    """Arm *sim* with the plan's crashes, rejoins, failover and windows.

    Validates the plan against the simulation's tree first, so a bad plan
    never half-perturbs a run.  Control-plane loss probabilities do not
    apply here — the simulator moves *tasks*, whose transfers are reliable;
    loss affects the negotiation transport (:class:`FaultyNetwork`).
    """
    plan.validate(sim.tree)
    for crash in plan.crashes:
        sim.schedule_failure(crash.node, crash.time)
    for rejoin in plan.rejoins:
        sim.engine.schedule_at(
            rejoin.time, lambda node=rejoin.node: sim.revive_node(node)
        )
    if plan.failover is not None:
        sim.engine.schedule_at(plan.failover.time, sim.fail_root)
    if plan.degradations:
        sim.set_link_time_factor(
            lambda parent, child, now: plan.degradation_factor(child, now)
        )
