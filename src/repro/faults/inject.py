"""Applying a :class:`~repro.faults.plan.FaultPlan` to both execution layers.

* :class:`FaultyNetwork` wraps the protocol transport: control messages
  crossing a real tree link are dropped or duplicated according to the
  plan's per-link probabilities, and their latency is stretched inside
  degradation windows.  Each decision is addressed by the link and the
  per-link message ordinal, so a run is bit-for-bit reproducible from the
  plan alone.
* :func:`apply_to_simulation` arms the steady-state simulator: node crashes
  are scheduled at their virtual times and the plan's degradation windows
  are installed as the simulator's link-time factor.

The virtual-parent link that seeds the root is **never** perturbed — it
models the application invoking its local root, not a network link.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Optional, Tuple

from ..exceptions import ProtocolError
from ..platform.tree import Tree
from ..protocol.messages import Message, wire_size
from ..protocol.network import Network
from ..sim.simulator import Simulation
from .plan import FaultPlan


class FaultyNetwork(Network):
    """A :class:`~repro.protocol.network.Network` with a lossy control plane.

    Counts the injected faults in ``dropped`` and ``duplicated`` (picked up
    by :class:`~repro.protocol.runner.ProtocolResult`).  Dropped messages
    still count toward ``messages_sent``/``bytes_sent`` — the sender paid
    for the transmission; the receiver just never saw it.
    """

    def __init__(
        self,
        tree: Tree,
        plan: FaultPlan,
        latency_factor=Fraction(1, 100),
        fixed_latency=0,
        time_offset=0,
    ):
        """*time_offset* anchors the network's local clock (which starts at
        0) in the plan's virtual timeline, so degradation windows line up —
        a re-negotiation launched at virtual time ``t`` passes
        ``time_offset=t``."""
        super().__init__(
            tree, latency_factor=latency_factor, fixed_latency=fixed_latency
        )
        self.plan = plan
        self.time_offset = Fraction(time_offset)
        self.dropped = 0
        self.duplicated = 0
        #: per-directed-link message ordinals addressing the plan decisions
        self._ordinals: Dict[Tuple[Hashable, Hashable], int] = {}

    def _child_endpoint(self, a: Hashable, b: Hashable) -> Optional[Hashable]:
        """The child side of link ``a↔b``, or ``None`` off the tree."""
        if a not in self.tree or b not in self.tree:
            return None  # virtual-parent traffic: never perturbed
        if self.tree.parent(b) == a:
            return b
        if self.tree.parent(a) == b:
            return a
        return None

    def send(self, message: Message) -> None:
        a, b = message.sender, message.receiver
        child = self._child_endpoint(a, b)
        if child is None:
            super().send(message)
            return
        if b not in self._handlers:
            raise ProtocolError(f"no handler registered for {b!r}")
        ordinal = self._ordinals.get((a, b), 0)
        self._ordinals[(a, b)] = ordinal + 1
        # the sender transmitted, whatever the link then does to the message
        self.messages_sent += 1
        self.bytes_sent += wire_size(message)
        if self.plan.decision("drop", a, b, ordinal) < self.plan.link_drop(child):
            self.dropped += 1
            return
        latency = self.link_latency(a, b) * self.plan.degradation_factor(
            child, self.time_offset + self.engine.now
        )
        handler = self._handlers[b]
        self.engine.schedule_in(latency, lambda: handler(message))
        if (
            self.plan.decision("duplicate", a, b, ordinal)
            < self.plan.link_duplicate(child)
        ):
            # the spurious copy arrives right behind the original
            self.duplicated += 1
            self.engine.schedule_in(latency, lambda: handler(message))


def apply_to_simulation(sim: Simulation, plan: FaultPlan) -> None:
    """Arm *sim* with the plan's crashes and degradation windows.

    Validates the plan against the simulation's tree first, so a bad plan
    never half-perturbs a run.  Control-plane loss probabilities do not
    apply here — the simulator moves *tasks*, whose transfers are reliable;
    loss affects the negotiation transport (:class:`FaultyNetwork`).
    """
    plan.validate(sim.tree)
    for crash in plan.crashes:
        sim.schedule_failure(crash.node, crash.time)
    if plan.degradations:
        sim.set_link_time_factor(
            lambda parent, child, now: plan.degradation_factor(child, now)
        )
