"""Failure detection during steady state: a deterministic heartbeat monitor.

The root (the supervisor of :func:`~repro.faults.recovery.resilient_run`)
pings the platform every *interval* time units; a node that misses a beat is
suspected, and declared dead *timeout* time units after the missed beat.
Everything runs on the simulation's exact-rational event engine, so
detection times are deterministic and analytically predictable:

    ``detect_at(crash) = interval · ⌈crash / interval⌉ + timeout``

(a crash exactly on a beat is caught by that very beat — crash events are
scheduled before the monitor starts, so they fire first at equal times).
:func:`detection_time` computes the same quantity without running anything;
:func:`~repro.faults.recovery.resilient_run` uses it to pre-plan the
recovery and then asserts the live monitor agreed.

The monitor's periodic check uses the engine's cancellable timers
(:class:`~repro.sim.engine.Timer`), so it can be stopped — and bounds
itself by *until* so a finite-horizon simulation still drains.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Dict, Hashable, Optional

from ..core.rates import as_fraction
from ..exceptions import FaultError
from ..sim.simulator import Simulation

#: Callback invoked as ``on_detect(node, time)`` when a death is declared.
DetectFn = Callable[[Hashable, Fraction], None]


def detection_time(crash_time, interval, timeout) -> Fraction:
    """When a crash at *crash_time* is declared, without simulating.

    The first heartbeat at or after the crash is missed; the declaration
    follows *timeout* later.
    """
    crash = as_fraction(crash_time)
    beat = as_fraction(interval)
    if beat <= 0:
        raise FaultError(f"heartbeat interval must be positive, got {beat}")
    return beat * math.ceil(crash / beat) + as_fraction(timeout)


class HeartbeatMonitor:
    """Detects crashed nodes inside a running :class:`Simulation`.

    * *interval* — time between heartbeat rounds (first round at t = 0);
    * *timeout* — grace period between a missed beat and the declaration;
    * *until* — stop monitoring after this time (required for a run that
      must drain; the last round is the first beat at or after *until*);
    * *on_detect* — called once per dead node, at declaration time.

    ``heartbeats`` counts completed rounds; ``detected`` maps each declared
    node to its declaration time.
    """

    def __init__(
        self,
        sim: Simulation,
        interval,
        timeout,
        until=None,
        on_detect: Optional[DetectFn] = None,
    ):
        self.sim = sim
        self.interval = as_fraction(interval)
        self.timeout = as_fraction(timeout)
        if self.interval <= 0:
            raise FaultError(
                f"heartbeat interval must be positive, got {self.interval}"
            )
        if self.timeout < 0:
            raise FaultError(f"timeout must be >= 0, got {self.timeout}")
        self.until = as_fraction(until) if until is not None else None
        self.on_detect = on_detect
        self.heartbeats = 0
        self.detected: Dict[Hashable, Fraction] = {}
        self._suspected: set = set()
        self._timer = None
        self._stopped = False

    def start(self) -> "HeartbeatMonitor":
        """Schedule the first heartbeat round (at t = 0)."""
        self._timer = self.sim.engine.schedule_at(Fraction(0), self._beat)
        return self

    def stop(self) -> None:
        """Cancel the monitoring chain."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()

    # ------------------------------------------------------------------
    def _beat(self) -> None:
        if self._stopped:
            return
        self.heartbeats += 1
        now = self.sim.engine.now
        for name, state in self.sim.nodes.items():
            if state.dead and name not in self._suspected:
                self._suspected.add(name)
                self.sim.engine.schedule_in(
                    self.timeout, lambda n=name: self._declare(n)
                )
        if self.until is None or now < self.until:
            self._timer = self.sim.engine.schedule_in(self.interval, self._beat)

    def _declare(self, node: Hashable) -> None:
        if self._stopped or node in self.detected:
            return
        now = self.sim.engine.now
        self.detected[node] = now
        if self.on_detect is not None:
            self.on_detect(node, now)
