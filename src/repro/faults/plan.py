"""Deterministic, serializable fault plans.

A :class:`FaultPlan` is a *pure description* of every fault a run will
suffer: node crashes at given virtual times, nodes rejoining after repair,
the master itself failing over, per-link control-message drop /
duplication / corruption probabilities, and transient link-degradation
windows.  It
contains **no randomness state** — every probabilistic decision is derived
on demand from the plan's seed and the decision's coordinates
(:meth:`FaultPlan.decision`), so

* the same plan produces the *identical* fault trace on every run, on every
  machine, regardless of import order or interleaving (no shared RNG whose
  stream could be consumed in a different order);
* a plan round-trips through JSON (:meth:`FaultPlan.to_json` /
  :meth:`FaultPlan.from_json`) without loss — probabilities and times are
  exact :class:`~fractions.Fraction` values serialized as strings.

Plans are validated against a platform before use
(:meth:`FaultPlan.validate`): crashing the root or an unknown node, or a
probability of 1 (which no retry policy can beat), is rejected up front.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Optional, Tuple

from ..core.rates import as_fraction
from ..exceptions import FaultError
from ..platform.tree import Tree


def _prob(value) -> Fraction:
    p = as_fraction(value)
    if p < 0 or p >= 1:
        raise FaultError(f"probability must be in [0, 1), got {p}")
    return p


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of *node* at virtual *time*."""

    node: Hashable
    time: Fraction

    def __post_init__(self):
        object.__setattr__(self, "time", as_fraction(self.time))
        if self.time < 0:
            raise FaultError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class NodeRejoin:
    """A previously crashed *node* returns, repaired, at virtual *time*.

    The node brings its whole pre-crash subtree back with it (a repaired
    cluster re-registers as one unit, exactly the arrival scenario of the
    star-redistribution literature).  The plan must also crash the node,
    strictly earlier — a rejoin of a node that never left is meaningless.
    """

    node: Hashable
    time: Fraction

    def __post_init__(self):
        object.__setattr__(self, "time", as_fraction(self.time))
        if self.time < 0:
            raise FaultError(f"rejoin time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class RootFailover:
    """The master crashes at virtual *time*; survivors elect a new root.

    Modelled as its own fault class rather than a :class:`NodeCrash` of
    the root: a plain root crash stays rejected by :meth:`FaultPlan.validate`
    (a dead root with no election is a dead application), while a failover
    says the deployment *has* an election procedure — the highest-priority
    live child (first in bandwidth-centric order) takes over the task
    supply and the negotiation resumes under it.
    """

    time: Fraction

    def __post_init__(self):
        object.__setattr__(self, "time", as_fraction(self.time))
        if self.time < 0:
            raise FaultError(f"failover time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class Corruption:
    """A window of hostile garbling on the link above *child*.

    Between *start* and *end* (virtual time, half-open; ``end=None`` means
    forever) each control message on the link is corrupted with
    probability *rate*.  Corrupt frames are detected by checksum /
    integrity check and discarded before any state machine sees them, so
    the observable effect is a drop — but one counted separately and fed
    to the quarantine policy.
    """

    child: Hashable
    rate: Fraction
    start: Fraction = Fraction(0)
    end: Optional[Fraction] = None

    def __post_init__(self):
        object.__setattr__(self, "rate", _prob(self.rate))
        object.__setattr__(self, "start", as_fraction(self.start))
        if self.end is not None:
            object.__setattr__(self, "end", as_fraction(self.end))
            if not self.start < self.end:
                raise FaultError(
                    f"corruption window [{self.start}, {self.end}) is empty"
                )
        if self.start < 0:
            raise FaultError(
                f"corruption window must start at >= 0, got {self.start}"
            )


@dataclass(frozen=True)
class LinkFaults:
    """Per-link override of the control-plane loss model.

    The link is identified by its *child* endpoint (every tree link is
    ``parent(child) ↔ child``).  Omitted links use the plan's global
    probabilities.
    """

    child: Hashable
    drop: Fraction = Fraction(0)
    duplicate: Fraction = Fraction(0)
    corrupt: Fraction = Fraction(0)

    def __post_init__(self):
        object.__setattr__(self, "drop", _prob(self.drop))
        object.__setattr__(self, "duplicate", _prob(self.duplicate))
        object.__setattr__(self, "corrupt", _prob(self.corrupt))


@dataclass(frozen=True)
class LinkDegradation:
    """Transient slow-down of the link above *child*.

    Between *start* and *end* (virtual time, half-open ``[start, end)``)
    every transfer beginning on the link takes *factor* times as long —
    task transfers in the simulator and control messages in a
    :class:`~repro.faults.inject.FaultyNetwork` alike.
    """

    child: Hashable
    factor: Fraction
    start: Fraction
    end: Fraction

    def __post_init__(self):
        object.__setattr__(self, "factor", as_fraction(self.factor))
        object.__setattr__(self, "start", as_fraction(self.start))
        object.__setattr__(self, "end", as_fraction(self.end))
        if self.factor < 1:
            raise FaultError(
                f"degradation factor must be >= 1, got {self.factor}"
            )
        if not self.start < self.end:
            raise FaultError(
                f"degradation window [{self.start}, {self.end}) is empty"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, deterministically.

    * *seed* drives every probabilistic decision (see :meth:`decision`);
    * *crashes* are fail-stop node crashes at virtual times;
    * *rejoins* bring previously crashed subtrees back after repair;
    * *failover* crashes the master itself and triggers an election;
    * *drop* / *duplicate* / *corrupt* are the global per-message
      probabilities that a control message is lost / delivered twice /
      garbled on the wire, overridable per link via *links*;
    * *corruptions* are transient hostile-garbling windows per link;
    * *degradations* are transient link slow-down windows;
    * *task_drop* / *task_corrupt* are the **data-plane** fault rates:
      the probability that one send of a task payload frame is lost in
      flight, or that its payload bytes are garbled before framing (so
      only the end-to-end payload checksum catches it).  They are applied
      per *attempt* by the task plane's transmit filter
      (:meth:`repro.taskplane.plane.TaskPlaneNode._transmit`), never by
      the control transports — retransmission for task frames lives in
      the plane's retention buffer, not in the protocol's retry policy.
    """

    seed: int = 0
    crashes: Tuple[NodeCrash, ...] = ()
    drop: Fraction = Fraction(0)
    duplicate: Fraction = Fraction(0)
    links: Tuple[LinkFaults, ...] = ()
    degradations: Tuple[LinkDegradation, ...] = ()
    rejoins: Tuple[NodeRejoin, ...] = ()
    failover: Optional[RootFailover] = None
    corrupt: Fraction = Fraction(0)
    corruptions: Tuple[Corruption, ...] = ()
    task_drop: Fraction = Fraction(0)
    task_corrupt: Fraction = Fraction(0)

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "drop", _prob(self.drop))
        object.__setattr__(self, "duplicate", _prob(self.duplicate))
        object.__setattr__(self, "corrupt", _prob(self.corrupt))
        object.__setattr__(self, "task_drop", _prob(self.task_drop))
        object.__setattr__(self, "task_corrupt", _prob(self.task_corrupt))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "degradations", tuple(self.degradations))
        object.__setattr__(self, "rejoins", tuple(self.rejoins))
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        seen = set()
        for crash in self.crashes:
            if crash.node in seen:
                raise FaultError(f"{crash.node!r} crashes twice")
            seen.add(crash.node)
        rejoined = set()
        for rejoin in self.rejoins:
            if rejoin.node in rejoined:
                raise FaultError(f"{rejoin.node!r} rejoins twice")
            rejoined.add(rejoin.node)
            crashed_at = self.crash_time(rejoin.node)
            if crashed_at is None:
                raise FaultError(
                    f"{rejoin.node!r} rejoins without ever crashing"
                )
            if not rejoin.time > crashed_at:
                raise FaultError(
                    f"{rejoin.node!r} rejoins at {rejoin.time}, not after "
                    f"its crash at {crashed_at}"
                )
        overridden = set()
        for link in self.links:
            if link.child in overridden:
                raise FaultError(f"link {link.child!r} overridden twice")
            overridden.add(link.child)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def crashed_nodes(self) -> Tuple[Hashable, ...]:
        return tuple(crash.node for crash in self.crashes)

    def crash_time(self, node: Hashable) -> Optional[Fraction]:
        for crash in self.crashes:
            if crash.node == node:
                return crash.time
        return None

    def rejoin_time(self, node: Hashable) -> Optional[Fraction]:
        for rejoin in self.rejoins:
            if rejoin.node == node:
                return rejoin.time
        return None

    def _link(self, child: Hashable) -> Optional[LinkFaults]:
        for link in self.links:
            if link.child == child:
                return link
        return None

    def link_drop(self, child: Hashable) -> Fraction:
        """Drop probability on the link above *child*."""
        override = self._link(child)
        return override.drop if override is not None else self.drop

    def link_duplicate(self, child: Hashable) -> Fraction:
        """Duplication probability on the link above *child*."""
        override = self._link(child)
        return override.duplicate if override is not None else self.duplicate

    def link_corrupt(self, child: Hashable) -> Fraction:
        """Time-independent corruption probability on the link above *child*.

        The static part of the hostile model: the per-link override if one
        exists, else the global rate.  Windowed :class:`Corruption` bursts
        are on top of this — see :meth:`corruption_rate`.  Wall-clock
        transports, which have no virtual ``now``, use only this part.
        """
        override = self._link(child)
        return override.corrupt if override is not None else self.corrupt

    def corruption_rate(self, child: Hashable, now) -> Fraction:
        """Corruption probability on the link above *child* at time *now*.

        The static rate of :meth:`link_corrupt`, max-combined with every
        :class:`Corruption` window active at *now* (probabilities do not
        multiply like slow-down factors; the strongest attacker wins).
        """
        t = as_fraction(now)
        rate = self.link_corrupt(child)
        for window in self.corruptions:
            if window.child == child and window.start <= t and (
                window.end is None or t < window.end
            ):
                rate = max(rate, window.rate)
        return rate

    def degradation_factor(self, child: Hashable, now) -> Fraction:
        """Transfer-time multiplier of the link above *child* at time *now*.

        Overlapping windows compound (factors multiply)."""
        t = as_fraction(now)
        factor = Fraction(1)
        for window in self.degradations:
            if window.child == child and window.start <= t < window.end:
                factor *= window.factor
        return factor

    @property
    def lossy(self) -> bool:
        """Whether any link can drop or duplicate control messages."""
        if self.drop > 0 or self.duplicate > 0:
            return True
        return any(l.drop > 0 or l.duplicate > 0 for l in self.links)

    @property
    def hostile(self) -> bool:
        """Whether any link can garble control messages."""
        if self.corrupt > 0 or self.corruptions:
            return True
        return any(l.corrupt > 0 for l in self.links)

    @property
    def data_faulty(self) -> bool:
        """Whether the task data plane suffers drops or corruption."""
        return self.task_drop > 0 or self.task_corrupt > 0

    # ------------------------------------------------------------------
    # deterministic decisions
    # ------------------------------------------------------------------
    def decision(self, *coordinates) -> float:
        """A uniform ``[0, 1)`` draw addressed by *coordinates*.

        The draw is a pure function of ``(seed, coordinates)`` — e.g.
        ``plan.decision("drop", parent, child, n)`` for the n-th message on
        a link — so callers never share RNG state and the fault trace is
        reproducible however the run is interleaved.
        """
        key = f"{self.seed}|" + "|".join(repr(c) for c in coordinates)
        return random.Random(key).random()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, tree: Tree) -> "FaultPlan":
        """Check the plan is applicable to *tree*; return the plan.

        Rejects crashes of the root or of unknown nodes, and link faults or
        degradations naming nodes without a parent link.
        """
        for crash in self.crashes:
            if crash.node not in tree:
                raise FaultError(f"crash of unknown node {crash.node!r}")
            if crash.node == tree.root:
                raise FaultError(
                    "the root cannot crash: it owns the task supply and "
                    "initiates every negotiation — a dead root is a dead "
                    "application, not a recoverable fault"
                )
        for link in self.links:
            if link.child not in tree or tree.parent(link.child) is None:
                raise FaultError(
                    f"link faults name {link.child!r}, which has no parent link"
                )
        for window in self.degradations:
            if window.child not in tree or tree.parent(window.child) is None:
                raise FaultError(
                    f"degradation names {window.child!r}, which has no parent link"
                )
        for window in self.corruptions:
            if window.child not in tree or tree.parent(window.child) is None:
                raise FaultError(
                    f"corruption names {window.child!r}, which has no parent link"
                )
        if self.failover is not None and not tree.children(tree.root):
            raise FaultError(
                "root failover needs at least one child to elect"
            )
        return self

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize losslessly (Fractions as ``"p/q"`` strings)."""

        def frac(x: Fraction) -> str:
            return str(x)

        payload = {
            "seed": self.seed,
            "crashes": [
                {"node": c.node, "time": frac(c.time)} for c in self.crashes
            ],
            "drop": frac(self.drop),
            "duplicate": frac(self.duplicate),
            "corrupt": frac(self.corrupt),
            "links": [
                {
                    "child": l.child,
                    "drop": frac(l.drop),
                    "duplicate": frac(l.duplicate),
                    "corrupt": frac(l.corrupt),
                }
                for l in self.links
            ],
            "degradations": [
                {
                    "child": d.child,
                    "factor": frac(d.factor),
                    "start": frac(d.start),
                    "end": frac(d.end),
                }
                for d in self.degradations
            ],
            "rejoins": [
                {"node": r.node, "time": frac(r.time)} for r in self.rejoins
            ],
            "failover": (
                None if self.failover is None
                else {"time": frac(self.failover.time)}
            ),
            "corruptions": [
                {
                    "child": w.child,
                    "rate": frac(w.rate),
                    "start": frac(w.start),
                    "end": None if w.end is None else frac(w.end),
                }
                for w in self.corruptions
            ],
            "task_drop": frac(self.task_drop),
            "task_corrupt": frac(self.task_corrupt),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            seed=payload.get("seed", 0),
            crashes=tuple(
                NodeCrash(node=c["node"], time=Fraction(c["time"]))
                for c in payload.get("crashes", ())
            ),
            drop=Fraction(payload.get("drop", 0)),
            duplicate=Fraction(payload.get("duplicate", 0)),
            corrupt=Fraction(payload.get("corrupt", 0)),
            links=tuple(
                LinkFaults(
                    child=l["child"],
                    drop=Fraction(l.get("drop", 0)),
                    duplicate=Fraction(l.get("duplicate", 0)),
                    corrupt=Fraction(l.get("corrupt", 0)),
                )
                for l in payload.get("links", ())
            ),
            degradations=tuple(
                LinkDegradation(
                    child=d["child"],
                    factor=Fraction(d["factor"]),
                    start=Fraction(d["start"]),
                    end=Fraction(d["end"]),
                )
                for d in payload.get("degradations", ())
            ),
            rejoins=tuple(
                NodeRejoin(node=r["node"], time=Fraction(r["time"]))
                for r in payload.get("rejoins", ())
            ),
            failover=(
                None if payload.get("failover") is None
                else RootFailover(time=Fraction(payload["failover"]["time"]))
            ),
            corruptions=tuple(
                Corruption(
                    child=w["child"],
                    rate=Fraction(w["rate"]),
                    start=Fraction(w.get("start", 0)),
                    end=(None if w.get("end") is None
                         else Fraction(w["end"])),
                )
                for w in payload.get("corruptions", ())
            ),
            task_drop=Fraction(payload.get("task_drop", 0)),
            task_corrupt=Fraction(payload.get("task_corrupt", 0)),
        )


def random_plan(
    tree: Tree,
    seed: int,
    n_crashes: int = 1,
    crash_span=Fraction(10),
    drop=Fraction(0),
    duplicate=Fraction(0),
) -> FaultPlan:
    """A reproducible plan crashing *n_crashes* non-root nodes of *tree*.

    Crash victims and times are drawn from ``random.Random(seed)`` — the
    same seed always produces the same plan.  Crash times are uniform
    rationals (granularity 1/64) in ``(0, crash_span)``.
    """
    candidates = [n for n in tree.nodes() if n != tree.root]
    if n_crashes > len(candidates):
        raise FaultError(
            f"cannot crash {n_crashes} of {len(candidates)} non-root nodes"
        )
    rng = random.Random(seed)
    victims = rng.sample(candidates, n_crashes)
    span = as_fraction(crash_span)
    crashes = tuple(
        NodeCrash(node=v, time=span * Fraction(rng.randint(1, 63), 64))
        for v in victims
    )
    return FaultPlan(
        seed=seed, crashes=crashes, drop=drop, duplicate=duplicate
    ).validate(tree)
