"""Deterministic, serializable fault plans.

A :class:`FaultPlan` is a *pure description* of every fault a run will
suffer: node crashes at given virtual times, per-link control-message drop
and duplication probabilities, and transient link-degradation windows.  It
contains **no randomness state** — every probabilistic decision is derived
on demand from the plan's seed and the decision's coordinates
(:meth:`FaultPlan.decision`), so

* the same plan produces the *identical* fault trace on every run, on every
  machine, regardless of import order or interleaving (no shared RNG whose
  stream could be consumed in a different order);
* a plan round-trips through JSON (:meth:`FaultPlan.to_json` /
  :meth:`FaultPlan.from_json`) without loss — probabilities and times are
  exact :class:`~fractions.Fraction` values serialized as strings.

Plans are validated against a platform before use
(:meth:`FaultPlan.validate`): crashing the root or an unknown node, or a
probability of 1 (which no retry policy can beat), is rejected up front.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Optional, Tuple

from ..core.rates import as_fraction
from ..exceptions import FaultError
from ..platform.tree import Tree


def _prob(value) -> Fraction:
    p = as_fraction(value)
    if p < 0 or p >= 1:
        raise FaultError(f"probability must be in [0, 1), got {p}")
    return p


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of *node* at virtual *time*."""

    node: Hashable
    time: Fraction

    def __post_init__(self):
        object.__setattr__(self, "time", as_fraction(self.time))
        if self.time < 0:
            raise FaultError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-link override of the control-plane loss model.

    The link is identified by its *child* endpoint (every tree link is
    ``parent(child) ↔ child``).  Omitted links use the plan's global
    probabilities.
    """

    child: Hashable
    drop: Fraction = Fraction(0)
    duplicate: Fraction = Fraction(0)

    def __post_init__(self):
        object.__setattr__(self, "drop", _prob(self.drop))
        object.__setattr__(self, "duplicate", _prob(self.duplicate))


@dataclass(frozen=True)
class LinkDegradation:
    """Transient slow-down of the link above *child*.

    Between *start* and *end* (virtual time, half-open ``[start, end)``)
    every transfer beginning on the link takes *factor* times as long —
    task transfers in the simulator and control messages in a
    :class:`~repro.faults.inject.FaultyNetwork` alike.
    """

    child: Hashable
    factor: Fraction
    start: Fraction
    end: Fraction

    def __post_init__(self):
        object.__setattr__(self, "factor", as_fraction(self.factor))
        object.__setattr__(self, "start", as_fraction(self.start))
        object.__setattr__(self, "end", as_fraction(self.end))
        if self.factor < 1:
            raise FaultError(
                f"degradation factor must be >= 1, got {self.factor}"
            )
        if not self.start < self.end:
            raise FaultError(
                f"degradation window [{self.start}, {self.end}) is empty"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, deterministically.

    * *seed* drives every probabilistic decision (see :meth:`decision`);
    * *crashes* are fail-stop node crashes at virtual times;
    * *drop* / *duplicate* are the global per-message probabilities that a
      control message is lost / delivered twice, overridable per link via
      *links*;
    * *degradations* are transient link slow-down windows.
    """

    seed: int = 0
    crashes: Tuple[NodeCrash, ...] = ()
    drop: Fraction = Fraction(0)
    duplicate: Fraction = Fraction(0)
    links: Tuple[LinkFaults, ...] = ()
    degradations: Tuple[LinkDegradation, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "drop", _prob(self.drop))
        object.__setattr__(self, "duplicate", _prob(self.duplicate))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "degradations", tuple(self.degradations))
        seen = set()
        for crash in self.crashes:
            if crash.node in seen:
                raise FaultError(f"{crash.node!r} crashes twice")
            seen.add(crash.node)
        overridden = set()
        for link in self.links:
            if link.child in overridden:
                raise FaultError(f"link {link.child!r} overridden twice")
            overridden.add(link.child)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def crashed_nodes(self) -> Tuple[Hashable, ...]:
        return tuple(crash.node for crash in self.crashes)

    def crash_time(self, node: Hashable) -> Optional[Fraction]:
        for crash in self.crashes:
            if crash.node == node:
                return crash.time
        return None

    def _link(self, child: Hashable) -> Optional[LinkFaults]:
        for link in self.links:
            if link.child == child:
                return link
        return None

    def link_drop(self, child: Hashable) -> Fraction:
        """Drop probability on the link above *child*."""
        override = self._link(child)
        return override.drop if override is not None else self.drop

    def link_duplicate(self, child: Hashable) -> Fraction:
        """Duplication probability on the link above *child*."""
        override = self._link(child)
        return override.duplicate if override is not None else self.duplicate

    def degradation_factor(self, child: Hashable, now) -> Fraction:
        """Transfer-time multiplier of the link above *child* at time *now*.

        Overlapping windows compound (factors multiply)."""
        t = as_fraction(now)
        factor = Fraction(1)
        for window in self.degradations:
            if window.child == child and window.start <= t < window.end:
                factor *= window.factor
        return factor

    @property
    def lossy(self) -> bool:
        """Whether any link can drop or duplicate control messages."""
        if self.drop > 0 or self.duplicate > 0:
            return True
        return any(l.drop > 0 or l.duplicate > 0 for l in self.links)

    # ------------------------------------------------------------------
    # deterministic decisions
    # ------------------------------------------------------------------
    def decision(self, *coordinates) -> float:
        """A uniform ``[0, 1)`` draw addressed by *coordinates*.

        The draw is a pure function of ``(seed, coordinates)`` — e.g.
        ``plan.decision("drop", parent, child, n)`` for the n-th message on
        a link — so callers never share RNG state and the fault trace is
        reproducible however the run is interleaved.
        """
        key = f"{self.seed}|" + "|".join(repr(c) for c in coordinates)
        return random.Random(key).random()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, tree: Tree) -> "FaultPlan":
        """Check the plan is applicable to *tree*; return the plan.

        Rejects crashes of the root or of unknown nodes, and link faults or
        degradations naming nodes without a parent link.
        """
        for crash in self.crashes:
            if crash.node not in tree:
                raise FaultError(f"crash of unknown node {crash.node!r}")
            if crash.node == tree.root:
                raise FaultError(
                    "the root cannot crash: it owns the task supply and "
                    "initiates every negotiation — a dead root is a dead "
                    "application, not a recoverable fault"
                )
        for link in self.links:
            if link.child not in tree or tree.parent(link.child) is None:
                raise FaultError(
                    f"link faults name {link.child!r}, which has no parent link"
                )
        for window in self.degradations:
            if window.child not in tree or tree.parent(window.child) is None:
                raise FaultError(
                    f"degradation names {window.child!r}, which has no parent link"
                )
        return self

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize losslessly (Fractions as ``"p/q"`` strings)."""

        def frac(x: Fraction) -> str:
            return str(x)

        payload = {
            "seed": self.seed,
            "crashes": [
                {"node": c.node, "time": frac(c.time)} for c in self.crashes
            ],
            "drop": frac(self.drop),
            "duplicate": frac(self.duplicate),
            "links": [
                {
                    "child": l.child,
                    "drop": frac(l.drop),
                    "duplicate": frac(l.duplicate),
                }
                for l in self.links
            ],
            "degradations": [
                {
                    "child": d.child,
                    "factor": frac(d.factor),
                    "start": frac(d.start),
                    "end": frac(d.end),
                }
                for d in self.degradations
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            seed=payload.get("seed", 0),
            crashes=tuple(
                NodeCrash(node=c["node"], time=Fraction(c["time"]))
                for c in payload.get("crashes", ())
            ),
            drop=Fraction(payload.get("drop", 0)),
            duplicate=Fraction(payload.get("duplicate", 0)),
            links=tuple(
                LinkFaults(
                    child=l["child"],
                    drop=Fraction(l.get("drop", 0)),
                    duplicate=Fraction(l.get("duplicate", 0)),
                )
                for l in payload.get("links", ())
            ),
            degradations=tuple(
                LinkDegradation(
                    child=d["child"],
                    factor=Fraction(d["factor"]),
                    start=Fraction(d["start"]),
                    end=Fraction(d["end"]),
                )
                for d in payload.get("degradations", ())
            ),
        )


def random_plan(
    tree: Tree,
    seed: int,
    n_crashes: int = 1,
    crash_span=Fraction(10),
    drop=Fraction(0),
    duplicate=Fraction(0),
) -> FaultPlan:
    """A reproducible plan crashing *n_crashes* non-root nodes of *tree*.

    Crash victims and times are drawn from ``random.Random(seed)`` — the
    same seed always produces the same plan.  Crash times are uniform
    rationals (granularity 1/64) in ``(0, crash_span)``.
    """
    candidates = [n for n in tree.nodes() if n != tree.root]
    if n_crashes > len(candidates):
        raise FaultError(
            f"cannot crash {n_crashes} of {len(candidates)} non-root nodes"
        )
    rng = random.Random(seed)
    victims = rng.sample(candidates, n_crashes)
    span = as_fraction(crash_span)
    crashes = tuple(
        NodeCrash(node=v, time=span * Fraction(rng.randint(1, 63), 64))
        for v in victims
    )
    return FaultPlan(
        seed=seed, crashes=crashes, drop=drop, duplicate=duplicate
    ).validate(tree)
