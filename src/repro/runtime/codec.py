"""Wire codec of the distributed runtime: checksummed JSON frames.

A frame is an 8-byte header — a 4-byte big-endian body length followed by
the 4-byte CRC32 of the body — and then a compact JSON object:

.. code-block:: text

    {"t": "prop", "s": "P0", "r": "P1", "v": "5/3", "x": 2}
    {"t": "ack",  "s": "P1", "r": "P0", "v": "1/3", "x": 2}

* ``t`` — message type, ``"prop"`` (:class:`~repro.protocol.messages.Proposal`)
  or ``"ack"`` (:class:`~repro.protocol.messages.Acknowledgment`);
* ``s`` / ``r`` — sender / receiver node names.  TCP transport requires
  names JSON can round-trip losslessly (strings, ints, bools, None) — the
  in-proc transport has no such restriction because it never serialises;
* ``v`` — the payload rational (β of a proposal, θ of an acknowledgment)
  as an exact ``"numerator/denominator"`` string, so no precision is lost
  on the wire (the paper's protocol is exact arithmetic end to end);
* ``x`` — the transaction id, omitted when ``xid`` is ``None``;
* ``i`` — the distributed-trace id, omitted when ``trace`` is ``None``
  (only telemetry-enabled negotiations mint one).  Carrying it inside the
  checksummed body means trace correlation survives exactly the frames
  that survive the CRC32 check — a corrupted frame can no more forge a
  trace id than a payload.

The 4-byte prefix bounds frames at 4 GiB; real frames are tens of bytes —
the paper's "one rational number per message" lightweightness claim
survives serialisation.

Hostile input is contained by construction: every validation failure — an
oversized length prefix, a checksum mismatch, a non-UTF-8 body, malformed
JSON, an unknown type, a rational that does not parse — raises a typed
:class:`~repro.exceptions.CodecError` instead of whatever exception the
stdlib felt like, so a reader loop can count and skip a bad frame without
dying.  ``CodecError.recoverable`` says whether the framing survived (the
bad frame was fully consumed) or the stream must be abandoned (the length
prefix itself cannot be trusted).  Errors that mean the stream is simply
gone (EOF mid-frame) stay plain :class:`~repro.exceptions.ProtocolError`.
"""

from __future__ import annotations

import asyncio
import json
import re
import struct
import zlib
from fractions import Fraction
from typing import Callable, Dict, Optional

from ..exceptions import CodecError, ProtocolError
from ..protocol.messages import Acknowledgment, Message, Proposal

#: Control frame kinds owned by this module.  Extension kinds (the task
#: plane's payload frames) register their decoders in
#: :data:`_EXTENSION_DECODERS` via :func:`register_frame_kind` and share
#: the same length|CRC32|body framing, so control and payload traffic can
#: interleave on one connection.
CONTROL_KINDS = ("prop", "ack")

_EXTENSION_DECODERS: Dict[str, Callable[[dict], object]] = {}


def register_frame_kind(kind: str, decoder: Callable[[dict], object]) -> None:
    """Register *decoder* for extension frames of wire type *kind*.

    The decoder receives the parsed JSON body (a dict whose ``"t"`` equals
    *kind*) and must either return the decoded frame object or raise a
    recoverable :class:`~repro.exceptions.CodecError` — never anything
    else, so hostile bytes stay contained in the reader loops exactly as
    for control frames.  Registering a control kind is a programming
    error and raises :class:`~repro.exceptions.ProtocolError`.
    """
    if kind in CONTROL_KINDS:
        raise ProtocolError(f"{kind!r} is a reserved control frame kind")
    _EXTENSION_DECODERS[kind] = decoder

#: struct format of the frame length prefix (4-byte big-endian unsigned).
LENGTH_PREFIX = struct.Struct(">I")

#: struct format of the full frame header: body length + CRC32 of the body.
FRAME_HEADER = struct.Struct(">II")

#: Upper bound on an accepted frame body, in bytes.
MAX_FRAME = 1 << 20

#: The exact shape of a wire rational: optional sign, digits, optional
#: ``/digits``.  ``Fraction()`` itself accepts much more (floats in
#: scientific notation, decimals); the wire format does not.
_RATIONAL = re.compile(r"^-?\d+(/\d+)?$")


def _check_name(name) -> None:
    if not isinstance(name, (str, int, bool, type(None))):
        raise ProtocolError(
            f"node name {name!r} does not survive JSON; use str/int names "
            "with the TCP transport"
        )


def encode_message(message: Message) -> bytes:
    """Serialise one Proposal/Acknowledgment to a JSON frame body."""
    if isinstance(message, Proposal):
        kind, value = "prop", message.beta
    elif isinstance(message, Acknowledgment):
        kind, value = "ack", message.theta
    else:
        raise ProtocolError(f"cannot encode {message!r}")
    _check_name(message.sender)
    _check_name(message.receiver)
    payload = {
        "t": kind,
        "s": message.sender,
        "r": message.receiver,
        "v": str(Fraction(value)),
    }
    if message.xid is not None:
        payload["x"] = message.xid
    if message.trace is not None:
        payload["i"] = message.trace
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def parse_rational(text) -> Fraction:
    """Parse a wire rational (``"n"`` or ``"n/d"``), hardened.

    The public face of the codec's rational validation — the federation
    service parses request payloads with it so a hostile or corrupted
    field raises a recoverable :class:`~repro.exceptions.CodecError`
    exactly like a malformed control frame would.
    """
    if not isinstance(text, str) or not _RATIONAL.match(text):
        raise CodecError(f"malformed wire rational {text!r}")
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as exc:
        raise CodecError(f"malformed wire rational {text!r}") from exc


_parse_rational = parse_rational


def _parse_payload(body: bytes) -> dict:
    """Parse a frame body into its JSON object, hardened against hostile
    bytes: every malformation raises a recoverable
    :class:`~repro.exceptions.CodecError`."""
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"non-UTF-8 frame body {body[:80]!r}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise CodecError(f"undecodable frame {body[:80]!r}") from exc
    if not isinstance(payload, dict):
        raise CodecError(f"frame body is not an object: {body[:80]!r}")
    return payload


def _decode_control(payload: dict, body: bytes) -> Message:
    try:
        kind = payload["t"]
        sender, receiver = payload["s"], payload["r"]
    except KeyError as exc:
        raise CodecError(f"frame missing field {exc}: {body[:80]!r}") from exc
    for name in (sender, receiver):
        if not isinstance(name, (str, int, bool, type(None))):
            raise CodecError(f"bad node name {name!r} in frame")
    value = _parse_rational(payload.get("v"))
    xid = payload.get("x")
    if xid is not None and not isinstance(xid, int):
        raise CodecError(f"non-integer transaction id {xid!r} in frame")
    trace = payload.get("i")
    if trace is not None and not isinstance(trace, str):
        raise CodecError(f"non-string trace id {trace!r} in frame")
    if kind == "prop":
        return Proposal(sender=sender, receiver=receiver, beta=value, xid=xid,
                        trace=trace)
    return Acknowledgment(sender=sender, receiver=receiver, theta=value,
                          xid=xid, trace=trace)


def decode_body(body: bytes) -> object:
    """Decode one frame body: a control :class:`Message` or any registered
    extension frame (see :func:`register_frame_kind`).

    Every malformation raises :class:`~repro.exceptions.CodecError` (always
    recoverable here: by the time a body exists the framing held).
    """
    payload = _parse_payload(body)
    try:
        kind = payload["t"]
    except KeyError as exc:
        raise CodecError(f"frame missing field {exc}: {body[:80]!r}") from exc
    if kind in CONTROL_KINDS:
        return _decode_control(payload, body)
    decoder = _EXTENSION_DECODERS.get(kind) if isinstance(kind, str) else None
    if decoder is None:
        raise CodecError(f"unknown frame type {kind!r}")
    return decoder(payload)


def decode_message(body: bytes) -> Message:
    """Inverse of :func:`encode_message`, hardened against hostile bytes.

    Accepts control frames only; an extension frame arriving where a
    control frame is required is as malformed as an unknown kind.
    """
    decoded = decode_body(body)
    if not isinstance(decoded, (Proposal, Acknowledgment)):
        raise CodecError(f"expected a control frame, got {type(decoded).__name__}")
    return decoded


def encode_blob(body: bytes) -> bytes:
    """Frame an arbitrary body: length + CRC32 header, then the body.

    The framing shared by protocol messages and the transport's hello
    handshake, so a corrupted handshake is detected exactly like a
    corrupted negotiation frame.
    """
    return FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def encode_frame(message: Message) -> bytes:
    """The full wire frame: length + CRC32 header + JSON body."""
    return encode_blob(encode_message(message))


def encode_any(obj) -> bytes:
    """Frame any wire object: a control :class:`Message` or an extension
    frame exposing ``to_payload()`` (a JSON-ready dict whose ``"t"`` names
    a registered kind).  Control and payload frames share the same
    length|CRC32 framing, so they interleave freely on one socket.
    """
    if isinstance(obj, (Proposal, Acknowledgment)):
        return encode_frame(obj)
    to_payload = getattr(obj, "to_payload", None)
    if to_payload is None:
        raise ProtocolError(f"cannot encode {obj!r}")
    body = json.dumps(to_payload(), separators=(",", ":")).encode("utf-8")
    return encode_blob(body)


async def read_blob(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one checksummed body from *reader*; ``None`` on clean EOF.

    * a connection closed mid-header or mid-body raises
      :class:`~repro.exceptions.ProtocolError` — the stream is gone;
    * an oversized length prefix raises a **non-recoverable**
      :class:`~repro.exceptions.CodecError` — the prefix cannot be trusted,
      so there is no way to resynchronise;
    * a checksum mismatch raises a **recoverable** ``CodecError`` — the
      frame was fully consumed, the reader may continue with the next one.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-prefix") from exc
    length, crc = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME:
        raise CodecError(
            f"frame of {length} bytes exceeds {MAX_FRAME}", recoverable=False
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    if zlib.crc32(body) != crc:
        raise CodecError(
            f"checksum mismatch on frame {body[:80]!r}"
        )
    return body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Message]:
    """Read one protocol frame from *reader*; ``None`` on clean EOF.

    Composes :func:`read_blob` (framing + integrity) with
    :func:`decode_message` (payload validation); see both for the failure
    modes.  A recoverable :class:`~repro.exceptions.CodecError` leaves the
    stream positioned at the next frame.
    """
    body = await read_blob(reader)
    if body is None:
        return None
    return decode_message(body)


async def read_any(reader: asyncio.StreamReader) -> Optional[object]:
    """Read one frame of *any* registered kind; ``None`` on clean EOF.

    The payload-frame sibling of :func:`read_frame`: same framing and
    failure modes, but the decoded object may be a control
    :class:`Message` or any extension frame (see
    :func:`register_frame_kind`).
    """
    body = await read_blob(reader)
    if body is None:
        return None
    return decode_body(body)
