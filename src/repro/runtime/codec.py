"""Wire codec of the distributed runtime: length-prefixed JSON frames.

A frame is a 4-byte big-endian length followed by a compact JSON object:

.. code-block:: text

    {"t": "prop", "s": "P0", "r": "P1", "v": "5/3", "x": 2}
    {"t": "ack",  "s": "P1", "r": "P0", "v": "1/3", "x": 2}

* ``t`` — message type, ``"prop"`` (:class:`~repro.protocol.messages.Proposal`)
  or ``"ack"`` (:class:`~repro.protocol.messages.Acknowledgment`);
* ``s`` / ``r`` — sender / receiver node names.  TCP transport requires
  names JSON can round-trip losslessly (strings, ints, bools, None) — the
  in-proc transport has no such restriction because it never serialises;
* ``v`` — the payload rational (β of a proposal, θ of an acknowledgment)
  as an exact ``"numerator/denominator"`` string, so no precision is lost
  on the wire (the paper's protocol is exact arithmetic end to end);
* ``x`` — the transaction id, omitted when ``xid`` is ``None``.

The 4-byte prefix bounds frames at 4 GiB; real frames are tens of bytes —
the paper's "one rational number per message" lightweightness claim
survives serialisation.  :func:`read_frame` enforces ``MAX_FRAME`` so a
corrupt or adversarial peer cannot make the reader allocate unboundedly.
"""

from __future__ import annotations

import asyncio
import json
import struct
from fractions import Fraction
from typing import Optional

from ..exceptions import ProtocolError
from ..protocol.messages import Acknowledgment, Message, Proposal

#: struct format of the frame length prefix (4-byte big-endian unsigned).
LENGTH_PREFIX = struct.Struct(">I")

#: Upper bound on an accepted frame body, in bytes.
MAX_FRAME = 1 << 20


def _check_name(name) -> None:
    if not isinstance(name, (str, int, bool, type(None))):
        raise ProtocolError(
            f"node name {name!r} does not survive JSON; use str/int names "
            "with the TCP transport"
        )


def encode_message(message: Message) -> bytes:
    """Serialise one Proposal/Acknowledgment to a JSON frame body."""
    if isinstance(message, Proposal):
        kind, value = "prop", message.beta
    elif isinstance(message, Acknowledgment):
        kind, value = "ack", message.theta
    else:
        raise ProtocolError(f"cannot encode {message!r}")
    _check_name(message.sender)
    _check_name(message.receiver)
    payload = {
        "t": kind,
        "s": message.sender,
        "r": message.receiver,
        "v": str(Fraction(value)),
    }
    if message.xid is not None:
        payload["x"] = message.xid
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_message(body: bytes) -> Message:
    """Inverse of :func:`encode_message`."""
    try:
        payload = json.loads(body.decode("utf-8"))
        kind = payload["t"]
        value = Fraction(payload["v"])
        sender, receiver = payload["s"], payload["r"]
        xid = payload.get("x")
    except (ValueError, KeyError, TypeError) as exc:
        raise ProtocolError(f"undecodable frame {body[:80]!r}") from exc
    if kind == "prop":
        return Proposal(sender=sender, receiver=receiver, beta=value, xid=xid)
    if kind == "ack":
        return Acknowledgment(sender=sender, receiver=receiver, theta=value,
                              xid=xid)
    raise ProtocolError(f"unknown frame type {kind!r}")


def encode_frame(message: Message) -> bytes:
    """The full wire frame: length prefix + JSON body."""
    body = encode_message(message)
    return LENGTH_PREFIX.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Message]:
    """Read one frame from *reader*; ``None`` on clean EOF.

    A connection closed mid-frame, an oversized length, or an undecodable
    body raise :class:`~repro.exceptions.ProtocolError` — the stream is
    unrecoverable after any of them.
    """
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-prefix") from exc
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_message(body)
