"""repro.runtime — the asyncio distributed runtime for BW-First.

Executes the paper's negotiation as genuinely concurrent peers instead of
a virtual-time simulation:

* :mod:`~repro.runtime.codec` — CRC32-checksummed, length-prefixed JSON
  wire frames carrying exact rationals; hostile bytes raise a typed
  :class:`~repro.exceptions.CodecError` instead of killing a reader;
* :mod:`~repro.runtime.transport` — the pluggable :class:`Transport` ABC
  with :class:`InProcTransport` (asyncio queues, optional seeded
  delay/loss) and :class:`TcpTransport` (one loopback socket per tree
  edge, drain-and-close shutdown);
* :mod:`~repro.runtime.runtime` — the :class:`Runtime` orchestrator:
  mailbox-driven actor fleet, wall-clock
  :class:`~repro.protocol.retry.RetryPolicy` timeouts, verification
  against :func:`~repro.core.bwfirst.bw_first`, the same telemetry schema
  as the simulated runner.

Quick use::

    from repro.runtime import negotiate
    result = negotiate(tree, transport="tcp")
    assert result.throughput == bw_first(tree).throughput
"""

from ..exceptions import CodecError
from .codec import (
    decode_message,
    encode_blob,
    encode_frame,
    encode_message,
    read_blob,
    read_frame,
)
from .runtime import (
    TRANSPORTS,
    Runtime,
    negotiate,
    sequential_completion_time,
)
from .transport import InProcTransport, TcpTransport, Transport

__all__ = [
    "Runtime",
    "negotiate",
    "sequential_completion_time",
    "Transport",
    "InProcTransport",
    "TcpTransport",
    "TRANSPORTS",
    "encode_message",
    "decode_message",
    "encode_frame",
    "encode_blob",
    "read_frame",
    "read_blob",
    "CodecError",
]
