"""The asyncio runtime: genuinely concurrent peers negotiating BW-First.

Where :func:`repro.protocol.runner.run_protocol` *simulates* the
distributed procedure inside one virtual-time event queue, the
:class:`Runtime` *executes* it: every platform node becomes an
:class:`~repro.protocol.actor.NodeActor` wrapped in an asyncio task that
blocks on its own mailbox, and messages travel through a pluggable
:class:`~repro.runtime.transport.Transport` — in-process queues or real
loopback TCP sockets.  The actor state machines are byte-for-byte the ones
the simulator drives, so Proposition 2 carries over: the negotiated
throughput is **exactly** ``bw_first()``'s (asserted when *verify* is on),
and with telemetry enabled the transaction span tree is structurally
identical to the simulated runner's — same spans, same tags, same
parent-child activation edges — only the timestamps are wall-clock
seconds instead of virtual time.

Timeouts are wall-clock here.  A parent arms a timer per proposal with the
same hierarchical shape as the simulated runner's budgets — the allowance
for a child must outlast the child's entire sub-negotiation, so
``B(X) = base_timeout + Σ_children B(Y)`` — and the
:class:`~repro.protocol.retry.RetryPolicy` multiplies it by ``backoff``
per attempt before giving the child up for dead.  The state machine's
idempotence makes the at-least-once retransmissions safe over a transport
that drops frames (an :class:`~repro.runtime.transport.InProcTransport`
or :class:`~repro.runtime.transport.TcpTransport` armed with a
:class:`~repro.faults.plan.FaultPlan`).
"""

from __future__ import annotations

import asyncio
import time
from fractions import Fraction
from typing import Dict, Hashable, Optional, Union

from ..core.bwfirst import bw_first, root_proposal
from ..core.rates import ZERO, as_fraction
from ..exceptions import ProtocolError
from ..platform.tree import Tree
from ..protocol.actor import DONE, NodeActor
from ..protocol.messages import Acknowledgment, Message, Proposal
from ..protocol.retry import RetryPolicy
from ..protocol.runner import VIRTUAL_PARENT, ProtocolResult, _prune
from ..telemetry.core import Registry, Span
from .transport import InProcTransport, TcpTransport, Transport

#: Registered transport factories for ``transport="name"`` shorthand.
TRANSPORTS = {
    "inproc": InProcTransport,
    "tcp": TcpTransport,
}

#: Nanoseconds per second, for exact wall-clock Fractions.
_NS = 10**9


def _make_transport(transport: Union[str, Transport]) -> Transport:
    if isinstance(transport, Transport):
        return transport
    try:
        factory = TRANSPORTS[transport]
    except KeyError:
        raise ProtocolError(
            f"unknown transport {transport!r}; "
            f"choose from {sorted(TRANSPORTS)} or pass a Transport"
        ) from None
    return factory()


class Runtime:
    """Boot an actor fleet from a :class:`~repro.platform.tree.Tree`, run
    the depth-first negotiation to quiescence, return a
    :class:`~repro.protocol.runner.ProtocolResult`.

    * *transport* — ``"inproc"`` (default), ``"tcp"``, or a ready
      :class:`~repro.runtime.transport.Transport` instance (e.g. one armed
      with a fault plan);
    * *retry* — wall-clock at-least-once policy; without it no timers are
      armed and a lossy transport would hang (callers staging loss must
      pass one);
    * *base_timeout* — seconds of patience per edge before the
      hierarchical budget of its subtree is added on top;
    * *failed* — fail-stop nodes: their mailboxes swallow everything, and
      parents prune them by wall-clock timeout exactly as the simulated
      runner prunes by virtual-time timeout (requires *retry* or uses a
      no-retry policy);
    * *deadline* — overall wall-clock bound on the run; exceeding it
      raises :class:`~repro.exceptions.ProtocolError` instead of hanging a
      CI job on a dead socket;
    * *telemetry* — span + counter instrumentation, same schema as the
      simulated runner (``protocol.*`` counters, one ``transaction`` span
      per Proposal→Ack exchange, tagged proposer/β/θ/xid/outcome).
    """

    def __init__(
        self,
        tree: Tree,
        transport: Union[str, Transport] = "inproc",
        *,
        proposal: Optional[Fraction] = None,
        verify: bool = True,
        failed: frozenset = frozenset(),
        retry: Optional[RetryPolicy] = None,
        base_timeout: float = 0.05,
        deadline: float = 60.0,
        telemetry: Optional[Registry] = None,
        trace_id: Optional[str] = None,
        close_transport: bool = True,
    ):
        if VIRTUAL_PARENT in tree:
            raise ProtocolError(f"{VIRTUAL_PARENT!r} is reserved")
        if tree.root in failed:
            raise ProtocolError(
                "the root cannot be failed: nothing can negotiate"
            )
        if base_timeout <= 0:
            raise ProtocolError("base_timeout must be positive")
        self.tree = tree
        self.transport = _make_transport(transport)
        self.proposal = proposal
        self.verify = verify
        self.failed = frozenset(failed)
        self.retry = retry
        self._policy = retry if retry is not None else RetryPolicy(
            max_retries=0
        )
        self.base_timeout = base_timeout
        self.deadline = deadline
        self.telemetry = telemetry
        #: when False the transport (and its sockets) survive
        #: :meth:`arun`, so a task plane can reuse the negotiated
        #: connections for payload frames — see ``repro.taskplane``
        self.close_transport = close_transport

        self.actors: Dict[Hashable, NodeActor] = {}
        self._mailboxes: Dict[Hashable, asyncio.Queue] = {}
        self._outbox: Optional[asyncio.Queue] = None
        self._tasks: list = []
        self._timers: set = set()
        self._attempts: Dict[tuple, int] = {}
        self._retransmissions = 0
        self._timeouts = 0
        self._done: Optional[asyncio.Future] = None
        self._t0 = 0

        spans_on = telemetry is not None and telemetry.enabled
        self._spans_on = spans_on
        if spans_on and trace_id is None:
            from ..telemetry.live import mint_trace_id

            trace_id = mint_trace_id()
        self.trace_id = trace_id
        self._open_spans: Dict[tuple, Span] = {}
        self._inbound: Dict[Hashable, Span] = {}

        #: wall-clock timeout budgets, children before parents (see module
        #: docstring): the parent's patience for an edge must outlast the
        #: child's whole sub-negotiation
        self._budgets: Dict[Hashable, float] = {}
        if retry is not None or self.failed:
            for node in reversed(list(tree.nodes())):
                if tree.parent(node) is None:
                    continue
                self._budgets[node] = base_timeout + sum(
                    self._budgets[ch] for ch in tree.children(node)
                )

    # ------------------------------------------------------------------
    # time + spans
    # ------------------------------------------------------------------
    def _now(self) -> Fraction:
        """Wall-clock seconds since the run started, exact."""
        return Fraction(time.monotonic_ns() - self._t0, _NS)

    def _note_proposal(self, sender: Hashable, message: Proposal) -> None:
        key = (sender, message.receiver, message.xid)
        span = self._open_spans.get(key)
        if span is None:
            self._open_spans[key] = self.telemetry.begin_span(
                "transaction",
                start=self._now(),
                node=message.receiver,
                parent=self._inbound.get(sender),
                proposer=sender,
                beta=message.beta,
                xid=message.xid,
                trace=self.trace_id,
            )
        else:
            span.tags["retries"] = span.tags.get("retries", 0) + 1

    def _close_span(self, key: tuple, outcome: str, theta=None) -> None:
        span = self._open_spans.pop(key, None)
        if span is not None:
            if theta is None:
                self.telemetry.end_span(span, end=self._now(), outcome=outcome)
            else:
                self.telemetry.end_span(span, end=self._now(), outcome=outcome,
                                        theta=theta)

    # ------------------------------------------------------------------
    # sending, timers
    # ------------------------------------------------------------------
    def _make_send(self, sender: Hashable):
        def send(message: Message) -> None:
            if self._spans_on and isinstance(message, Proposal):
                self._note_proposal(sender, message)
            self._outbox.put_nowait(message)
            if (
                self._budgets
                and isinstance(message, Proposal)
                and message.receiver in self._budgets
            ):
                self._arm_timer(sender, message.receiver, message.xid)

        return send

    def _arm_timer(self, sender: Hashable, child: Hashable, xid) -> None:
        key = (sender, child, xid)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        patience = self._budgets[child] * float(self._policy.backoff) ** attempt
        task = asyncio.ensure_future(
            self._timer_fires(sender, child, xid, patience)
        )
        self._timers.add(task)
        task.add_done_callback(self._timers.discard)

    async def _timer_fires(self, sender: Hashable, child: Hashable, xid,
                           patience: float) -> None:
        await asyncio.sleep(patience)
        actor = self.actors[sender]
        if not actor.is_pending(child, xid):
            return  # answered (or superseded) in the meantime
        if self._attempts[(sender, child, xid)] <= self._policy.max_retries:
            self._retransmissions += 1
            actor.resend_pending()  # re-enters _make_send → new timer
        else:
            self._timeouts += 1
            actor.on_timeout(child, xid)
            if self._spans_on:
                self._close_span((sender, child, xid), "timeout")

    # ------------------------------------------------------------------
    # actor + pump loops
    # ------------------------------------------------------------------
    async def _actor_loop(self, node: Hashable) -> None:
        actor = self.actors[node]
        mailbox = self._mailboxes[node]
        while True:
            message = await mailbox.get()
            if self._spans_on:
                if isinstance(message, Proposal):
                    if actor.lam is None:
                        span = self._open_spans.get(
                            (message.sender, node, message.xid)
                        )
                        if span is not None:
                            self._inbound[node] = span
                elif isinstance(message, Acknowledgment):
                    if actor.is_pending(message.sender, message.xid):
                        self._close_span(
                            (node, message.sender, message.xid),
                            "acked", theta=message.theta,
                        )
            actor.handle(message)

    async def _dead_loop(self, node: Hashable) -> None:
        """A failed node: swallow every message, answer nothing."""
        mailbox = self._mailboxes[node]
        while True:
            await mailbox.get()

    async def _pump(self) -> None:
        """Single ordered writer: actors enqueue, the pump transmits."""
        while True:
            message = await self._outbox.get()
            await self.transport.send(message)

    async def _virtual_parent(self) -> None:
        mailbox = self._mailboxes[VIRTUAL_PARENT]
        while True:
            message = await mailbox.get()
            if not isinstance(message, Acknowledgment):
                self._done.set_exception(ProtocolError(
                    "virtual parent expected an acknowledgment"
                ))
                return
            if self._spans_on:
                self._close_span(
                    (VIRTUAL_PARENT, self.tree.root, message.xid),
                    "acked", theta=message.theta,
                )
            if not self._done.done():
                self._done.set_result(message.theta)
            # keep draining: a duplicated root ack must not pile up

    # ------------------------------------------------------------------
    # orchestration
    # ------------------------------------------------------------------
    async def arun(self) -> ProtocolResult:
        """Async entry point: negotiate once, return the result."""
        loop = asyncio.get_running_loop()
        self._done = loop.create_future()
        self._outbox = asyncio.Queue()
        self._t0 = time.monotonic_ns()

        tree = self.tree
        self._mailboxes = {node: asyncio.Queue() for node in tree.nodes()}
        self._mailboxes[VIRTUAL_PARENT] = asyncio.Queue()
        await self.transport.start(tree, self._mailboxes)

        for node in tree.nodes():
            children = [
                (child, tree.c(child))
                for child in tree.children_by_bandwidth(node)
            ]
            parent = tree.parent(node)
            self.actors[node] = NodeActor(
                name=node,
                rate=tree.rate(node),
                parent=parent if parent is not None else VIRTUAL_PARENT,
                children=children,
                send=self._make_send(node),
            )

        def guarded(coroutine):
            task = asyncio.ensure_future(self._guard(coroutine))
            self._tasks.append(task)
            return task

        for node in tree.nodes():
            if node in self.failed:
                guarded(self._dead_loop(node))
            else:
                guarded(self._actor_loop(node))
        guarded(self._virtual_parent())
        guarded(self._pump())

        lam = root_proposal(tree) if self.proposal is None else self.proposal
        seed = Proposal(sender=VIRTUAL_PARENT, receiver=tree.root,
                        beta=lam, xid=0, trace=self.trace_id)
        if self._spans_on:
            self._open_spans[(VIRTUAL_PARENT, tree.root, 0)] = (
                self.telemetry.begin_span(
                    "transaction", start=self._now(), node=tree.root,
                    parent=None, proposer=VIRTUAL_PARENT, beta=lam, xid=0,
                    trace=self.trace_id,
                )
            )
        self._outbox.put_nowait(seed)

        try:
            theta = await asyncio.wait_for(
                asyncio.shield(self._done), timeout=self.deadline
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                f"negotiation did not converge within {self.deadline}s of "
                "wall clock — a hung transport, a lossy plan without a "
                "retry policy, or timeouts longer than the deadline"
            ) from None
        finally:
            completion = self._now()
            await self._shutdown()

        throughput = lam - theta
        if self.verify:
            self._check(throughput)
        return self._result(lam, throughput, completion)

    def run(self) -> ProtocolResult:
        """Synchronous entry point (owns a fresh event loop)."""
        return asyncio.run(self.arun())

    async def _guard(self, coroutine) -> None:
        """Propagate an actor/pump crash into the completion future."""
        try:
            await coroutine
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - fail the whole run
            if not self._done.done():
                self._done.set_exception(exc)

    async def _shutdown(self) -> None:
        for task in self._timers | set(self._tasks):
            task.cancel()
        pending = list(self._timers) + self._tasks
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._timers.clear()
        self._tasks.clear()
        if self.close_transport:
            await self.transport.close()

    @property
    def mailboxes(self) -> Dict[Hashable, asyncio.Queue]:
        """The per-node mailboxes of the last run — a task plane reusing
        the transport (``close_transport=False``) must keep consuming them,
        because the transport keeps delivering into these queues."""
        return self._mailboxes

    # ------------------------------------------------------------------
    # verification + result assembly (mirrors the simulated runner)
    # ------------------------------------------------------------------
    def _check(self, throughput: Fraction) -> None:
        excluded = self.failed | frozenset(
            getattr(self.transport, "quarantined", ())
        )
        reference_tree = (
            _prune(self.tree, excluded) if excluded else self.tree
        )
        reference = bw_first(reference_tree, proposal=self.proposal)
        if reference.throughput != throughput:
            raise ProtocolError(
                f"distributed runtime negotiated {throughput}, centralised "
                f"BW-First computes {reference.throughput}"
            )
        if not excluded:
            for node, outcome in reference.outcomes.items():
                actor = self.actors[node]
                if actor.lam != outcome.lam or (
                    actor.state == DONE and actor.theta != outcome.theta
                ):
                    raise ProtocolError(
                        f"actor {node!r} diverged from Algorithm 1", node=node
                    )

    def _result(self, lam: Fraction, throughput: Fraction,
                completion: Fraction) -> ProtocolResult:
        transport = self.transport
        transactions = 1 + sum(
            len(actor.transactions) for actor in self.actors.values()
        )
        view = Registry()
        tallies = (
            ("protocol.messages", transport.messages_sent),
            ("protocol.bytes", transport.bytes_sent),
            ("protocol.transactions", transactions),
            ("protocol.retransmissions", self._retransmissions),
            ("protocol.timeouts", self._timeouts),
            ("protocol.dropped", transport.dropped),
            ("protocol.duplicated", transport.duplicated),
            ("runtime.corrupt_frames",
             getattr(transport, "corrupt_frames", 0)),
            ("runtime.quarantined",
             len(getattr(transport, "quarantined", ()))),
        )
        registries = (view,) if self.telemetry is None else (
            view, self.telemetry
        )
        octets = getattr(transport, "octets_sent", None)
        edge_octets = getattr(transport, "octets_by_edge", None)
        for registry in registries:
            for name, amount in tallies:
                registry.counter(name).inc(amount)
            registry.gauge("protocol.completion_time").set(completion)
            registry.gauge("protocol.throughput").set(throughput)
            registry.gauge("protocol.visited_nodes").set(
                sum(1 for a in self.actors.values() if a.lam is not None)
            )
            if octets is not None:
                registry.counter("runtime.tcp.octets").inc(octets)
            if edge_octets:
                for (parent, child), count in edge_octets.items():
                    registry.counter(
                        "runtime.tcp.edge_octets",
                        edge=f"{parent}->{child}",
                    ).inc(count)
        return ProtocolResult(
            tree=self.tree,
            throughput=throughput,
            t_max=lam,
            actors=self.actors,
            telemetry=view,
            trace_id=self.trace_id,
        )


def negotiate(
    tree: Tree,
    transport: Union[str, Transport] = "inproc",
    **kwargs,
) -> ProtocolResult:
    """One-shot convenience: ``Runtime(tree, transport, **kwargs).run()``."""
    return Runtime(tree, transport, **kwargs).run()


def sequential_completion_time(
    result: ProtocolResult,
    latency_factor=Fraction(1, 100),
    fixed_latency=0,
) -> Fraction:
    """The *virtual* wall-clock a loss-free simulated run of this
    negotiation would take.

    The depth-first protocol keeps exactly one message in flight, so the
    simulated completion time is the plain sum of every message's link
    latency: two crossings (Proposal + Acknowledgment) per settled
    transaction, at ``c(child)·latency_factor + fixed_latency`` each; the
    virtual-parent link is free.  This maps a runtime negotiation — whose
    own ``completion_time`` is wall seconds — back onto a virtual
    timeline, which is how :func:`repro.faults.recovery.resilient_run`
    schedules the post-recovery switch when the re-negotiation ran over a
    real transport.  Only valid for runs without drops or timeouts (a
    retransmission would add waiting time the sum cannot see).
    """
    factor = as_fraction(latency_factor)
    fixed = as_fraction(fixed_latency)
    tree = result.tree
    total = ZERO
    for actor in result.actors.values():
        for child, _beta, _theta in actor.transactions:
            total += 2 * (tree.c(child) * factor + fixed)
    return total
