"""Pluggable message transports for the distributed runtime.

A :class:`Transport` moves :mod:`repro.protocol.messages` between actor
mailboxes (one :class:`asyncio.Queue` per node, owned by the
:class:`~repro.runtime.runtime.Runtime`).  Two implementations:

* :class:`InProcTransport` — pure asyncio queues.  Optionally applies a
  :class:`~repro.faults.plan.FaultPlan`'s control-plane loss model and a
  seeded per-message delivery delay, giving drop/duplication/reordering
  parity with the simulated :class:`~repro.faults.inject.FaultyNetwork`
  while running genuinely concurrently;
* :class:`TcpTransport` — one loopback TCP socket per tree edge, carrying
  the length-prefixed JSON frames of :mod:`repro.runtime.codec`.  The
  child endpoint of every edge dials its parent's listener and introduces
  itself with a hello frame; after the handshake both directions of the
  edge ride the same socket.  ``close()`` drains every writer before
  closing, so no ack is lost to shutdown.

Both transports tally ``messages_sent`` / ``bytes_sent`` (the *model*
bytes of :func:`~repro.protocol.messages.wire_size`, so counters are
comparable across the simulated and real paths) and ``dropped`` /
``duplicated`` (faults they injected themselves).  The TCP transport
additionally counts the real octets written — in total (``octets_sent``)
and per directed edge (``octets_by_edge``), which the runtime surfaces as
``runtime.tcp.edge_octets`` counters for the live dashboard.

Hostile faults ride the same plan: a corruption probability garbles the
control payload on the wire (literally, for TCP — a flipped body byte the
CRC32 of :mod:`repro.runtime.codec` catches at the receiver; by an
equivalent integrity-check model for in-proc frames, which never
serialise).  Corrupted frames are counted in ``corrupt_frames`` and
discarded **before** any actor state machine sees them; retransmission
recovers, exactly as for a drop.  With ``quarantine_after=K``, a link
that delivers K *consecutive* corrupt frames is declared hostile: its
child endpoint joins ``quarantined``, the receiver stops listening to the
edge (a firewall — later frames, valid or not, are counted in
``quarantine_dropped``), and the parent's retry timeouts then prune the
child exactly as if it had crashed.

The virtual-parent link that seeds the root is process-local on every
transport — never serialised, never perturbed — mirroring the simulated
network's convention.
"""

from __future__ import annotations

import asyncio
import json
from abc import ABC, abstractmethod
from typing import Dict, Hashable, Optional, Set, Tuple

from ..exceptions import CodecError, ProtocolError
from ..faults.inject import LinkFaultDecider
from ..faults.plan import FaultPlan
from ..platform.tree import Tree
from ..protocol.messages import Acknowledgment, Message, Proposal, wire_size
from .codec import encode_any, encode_blob, read_blob, read_any


def _is_control(message) -> bool:
    """Control-plane frames get the fault plan's loss model and the model
    byte accounting of :func:`~repro.protocol.messages.wire_size`; payload
    (task-plane) frames bypass both — their faults are injected by the
    task plane itself, where retransmission lives."""
    return isinstance(message, (Proposal, Acknowledgment))


def _model_size(message) -> int:
    if _is_control(message):
        return wire_size(message)
    return getattr(message, "wire_size", 0)


class Transport(ABC):
    """Delivers protocol messages between the runtime's actor mailboxes."""

    def __init__(self) -> None:
        self.tree: Optional[Tree] = None
        self.mailboxes: Dict[Hashable, asyncio.Queue] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted_sent = 0
        self.corrupt_frames = 0
        self.quarantine_dropped = 0
        self.dead_streams = 0
        self.payload_frames = 0
        self.quarantined: Set[Hashable] = set()

    async def start(self, tree: Tree,
                    mailboxes: Dict[Hashable, asyncio.Queue]) -> None:
        """Bind to the platform; must complete before the first send."""
        self.tree = tree
        self.mailboxes = mailboxes

    @abstractmethod
    async def send(self, message: Message) -> None:
        """Route one message toward its receiver's mailbox."""

    async def close(self) -> None:
        """Graceful shutdown: flush in-flight traffic, release resources."""

    # ------------------------------------------------------------------
    def _deliver_local(self, message: Message) -> None:
        mailbox = self.mailboxes.get(message.receiver)
        if mailbox is None:
            raise ProtocolError(f"no mailbox for {message.receiver!r}")
        mailbox.put_nowait(message)

    def _on_tree_link(self, message: Message) -> Optional[Hashable]:
        """The child endpoint of the message's link, ``None`` off-tree."""
        tree = self.tree
        a, b = message.sender, message.receiver
        if a not in tree or b not in tree:
            return None  # virtual-parent traffic: always local, never faulty
        if tree.parent(b) == a:
            return b
        if tree.parent(a) == b:
            return a
        raise ProtocolError(f"{a!r} and {b!r} are not adjacent")


class InProcTransport(Transport):
    """Asyncio-queue transport, optionally lossy and delayed.

    *plan* applies the fault plan's per-link drop/duplication model; its
    decisions are keyed by message ``xid`` and occurrence
    (:class:`~repro.faults.inject.LinkFaultDecider`), so the fault trace is
    the same one :class:`~repro.faults.inject.FaultyNetwork` injects into
    the simulated negotiation — concurrency cannot change which messages
    die.  *max_delay* (wall seconds) adds a seeded uniform delivery delay
    per message, exercising reordering; with ``max_delay=0`` delivery is
    immediate and in send order.

    *quarantine_after* arms the hostile-fault policy: K consecutive
    corrupt frames on a link quarantine its child endpoint (see the module
    docstring).  The in-proc path never serialises, so "corrupt" here
    means the receiver-side integrity check fails — the frame is counted
    and discarded before delivery, identically to the TCP transport's
    CRC32 rejection and the simulated network's payload check.
    """

    def __init__(self, plan: Optional[FaultPlan] = None,
                 max_delay: float = 0.0, seed: int = 0,
                 quarantine_after: Optional[int] = None):
        super().__init__()
        if max_delay < 0:
            raise ProtocolError("max_delay must be >= 0")
        if quarantine_after is not None and quarantine_after < 1:
            raise ProtocolError("quarantine_after must be >= 1")
        self.plan = plan
        self.max_delay = max_delay
        self.quarantine_after = quarantine_after
        self._decision_plan = plan if plan is not None else FaultPlan(seed=seed)
        self._decider = LinkFaultDecider(self._decision_plan)
        self._streaks: Dict[Hashable, int] = {}
        self._pending: Set[asyncio.Task] = set()

    async def send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += _model_size(message)
        child = self._on_tree_link(message)
        if child is not None and child in self.quarantined:
            self.quarantine_dropped += 1
            return
        if not _is_control(message):
            # payload frames: delivered verbatim — the task plane owns
            # their fault model and retransmission
            self.payload_frames += 1
            self._deliver_local(message)
            return
        copies = 1
        coordinates = None
        if child is not None and (self.plan is not None or self.max_delay):
            coordinates = self._decider.coordinates(message)
        if child is not None and self.plan is not None and (
            self.plan.lossy or self.plan.hostile
        ):
            drop, corrupt, duplicate = self._decider.full_verdict_at(
                child, coordinates
            )
            if drop:
                self.dropped += 1
                return  # never received: the corruption streak is untouched
            if corrupt:
                self.corrupted_sent += 1
                self.corrupt_frames += 1
                self._note_corrupt(child)
                return
            self._streaks[child] = 0
            if duplicate:
                self.duplicated += 1
                copies = 2
        for copy in range(copies):
            if child is not None and self.max_delay:
                delay = self.max_delay * self._decision_plan.decision(
                    "delay", copy, *coordinates
                )
                task = asyncio.ensure_future(self._deliver_late(message, delay))
                self._pending.add(task)
                task.add_done_callback(self._pending.discard)
            else:
                self._deliver_local(message)

    def _note_corrupt(self, child: Hashable) -> None:
        streak = self._streaks.get(child, 0) + 1
        self._streaks[child] = streak
        if (self.quarantine_after is not None
                and streak >= self.quarantine_after):
            self.quarantined.add(child)

    async def _deliver_late(self, message: Message, delay: float) -> None:
        await asyncio.sleep(delay)
        self._deliver_local(message)

    async def close(self) -> None:
        for task in list(self._pending):
            task.cancel()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        self._pending.clear()


class TcpTransport(Transport):
    """One loopback TCP socket per tree edge, length-prefixed JSON frames.

    Every node runs a listener; during :meth:`start`, the child endpoint
    of each edge dials its parent and sends a hello frame naming itself.
    Start returns only once every edge is connected in both directions, so
    the negotiation never races the handshake.

    *plan* injects the fault plan's drop model **at the sender**, before
    the frame reaches the socket — TCP itself never loses data, so this is
    how a lossy control plane is staged for wall-clock retry testing.
    Duplication writes the frame twice.  Corruption flips one body byte
    after the CRC32 header is computed, so the receiver's checksum fails
    and the frame dies in the reader loop — real garbled octets on a real
    socket, never reaching an actor.  *quarantine_after* arms the
    receiver-side firewall described in the module docstring.
    """

    def __init__(self, host: str = "127.0.0.1",
                 plan: Optional[FaultPlan] = None,
                 quarantine_after: Optional[int] = None,
                 ports: Optional[Dict[Hashable, int]] = None):
        super().__init__()
        if quarantine_after is not None and quarantine_after < 1:
            raise ProtocolError("quarantine_after must be >= 1")
        self.host = host
        self.plan = plan
        self.quarantine_after = quarantine_after
        #: requested listener port per node (0/omitted = ephemeral); after
        #: :meth:`start`, :attr:`bound_ports` holds the ports actually bound
        self.ports: Dict[Hashable, int] = dict(ports or {})
        self.bound_ports: Dict[Hashable, int] = {}
        self._decider = LinkFaultDecider(plan) if plan is not None else None
        self.octets_sent = 0
        #: real octets written per directed edge (sender, receiver) — the
        #: dashboard's per-edge traffic panel reads this via the runtime's
        #: ``runtime.tcp.edge_octets`` counters
        self.octets_by_edge: Dict[Tuple[Hashable, Hashable], int] = {}
        self._servers: Dict[Hashable, asyncio.AbstractServer] = {}
        self._writers: Dict[Tuple[Hashable, Hashable],
                            asyncio.StreamWriter] = {}
        self._readers: Set[asyncio.Task] = set()
        self._edges_ready: Optional[asyncio.Event] = None
        self._expected_edges = 0
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    async def start(self, tree: Tree,
                    mailboxes: Dict[Hashable, asyncio.Queue]) -> None:
        await super().start(tree, mailboxes)
        self._edges_ready = asyncio.Event()
        edges = [(tree.parent(n), n) for n in tree.nodes()
                 if tree.parent(n) is not None]
        self._expected_edges = len(edges)
        ports: Dict[Hashable, int] = {}
        for node in tree.nodes():
            server = await asyncio.start_server(
                self._make_accept_handler(node), host=self.host,
                port=self.ports.get(node, 0),
            )
            self._servers[node] = server
            ports[node] = server.sockets[0].getsockname()[1]
        self.bound_ports = dict(ports)
        for parent, child in edges:
            reader, writer = await asyncio.open_connection(
                self.host, ports[parent]
            )
            hello = json.dumps({"hello": child},
                               separators=(",", ":")).encode("utf-8")
            writer.write(encode_blob(hello))
            await writer.drain()
            self._writers[(child, parent)] = writer
            self._spawn_reader(child, parent, reader)
        if self._expected_edges == 0:
            self._edges_ready.set()
        await self._edges_ready.wait()
        if self._failure is not None:
            raise self._failure

    def _make_accept_handler(self, owner: Hashable):
        async def accept(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            try:
                blob = await read_blob(reader)
                if blob is None:
                    raise ProtocolError("connection closed before hello")
                hello = json.loads(blob.decode("utf-8"))
                peer = hello["hello"]
            except (ProtocolError, ValueError, KeyError) as exc:
                self._failure = ProtocolError(
                    f"bad handshake on {owner!r}'s listener"
                )
                self._failure.__cause__ = exc
                self._edges_ready.set()
                writer.close()
                return
            self._writers[(owner, peer)] = writer
            self._spawn_reader(owner, peer, reader)
            if len(self._writers) >= 2 * self._expected_edges:
                self._edges_ready.set()

        return accept

    def _spawn_reader(self, owner: Hashable, peer: Hashable,
                      reader: asyncio.StreamReader) -> None:
        task = asyncio.ensure_future(self._read_loop(owner, peer, reader))
        self._readers.add(task)
        task.add_done_callback(self._readers.discard)

    async def _read_loop(self, owner: Hashable, peer: Hashable,
                         reader: asyncio.StreamReader) -> None:
        """Decode frames arriving at *owner*'s end of one edge.

        Hostile bytes stop here: a recoverable :class:`CodecError` skips
        the frame (and feeds the quarantine streak); a non-recoverable one
        abandons the stream.  Either way no actor coroutine ever sees a
        frame that failed validation — at worst the peer's retries time
        out, which is the crash-detection path.
        """
        mailbox = self.mailboxes[owner]
        edge_child = peer if self.tree.parent(peer) == owner else owner
        streak = 0
        while True:
            try:
                message = await read_any(reader)
            except CodecError as exc:
                self.corrupt_frames += 1
                streak += 1
                if not exc.recoverable:
                    # framing lost — firewall the edge, retries will prune
                    self.quarantined.add(edge_child)
                    return
                if (self.quarantine_after is not None
                        and streak >= self.quarantine_after):
                    self.quarantined.add(edge_child)
                    return
                continue
            except ProtocolError:
                self.dead_streams += 1  # peer vanished mid-frame
                return
            if message is None:
                return  # peer drained and closed: clean shutdown
            streak = 0
            if edge_child in self.quarantined:
                self.quarantine_dropped += 1
                continue
            mailbox.put_nowait(message)

    # ------------------------------------------------------------------
    async def send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += _model_size(message)
        child = self._on_tree_link(message)
        if child is None:
            self._deliver_local(message)
            return
        writer = self._writers.get((message.sender, message.receiver))
        if writer is None:
            raise ProtocolError(
                f"no socket for edge {message.sender!r}→{message.receiver!r}"
            )
        copies = 1
        corrupt = False
        if not _is_control(message):
            self.payload_frames += 1
        elif self._decider is not None:
            drop, corrupt, duplicate = self._decider.full_verdict(
                child, message
            )
            if drop:
                self.dropped += 1
                return
            if duplicate:
                self.duplicated += 1
                copies = 2
        frame = encode_any(message)
        if corrupt:
            # flip a body bit *after* the CRC header was computed: the
            # receiver's checksum fails and the frame dies in its reader
            self.corrupted_sent += 1
            frame = frame[:-1] + bytes([frame[-1] ^ 0x01])
        edge = (message.sender, message.receiver)
        for _ in range(copies):
            writer.write(frame)
            self.octets_sent += len(frame)
            self.octets_by_edge[edge] = (
                self.octets_by_edge.get(edge, 0) + len(frame)
            )
        await writer.drain()

    async def close(self) -> None:
        """Drain-and-close: flush every socket, then tear down listeners."""
        for writer in self._writers.values():
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        self._writers.clear()
        for task in list(self._readers):
            task.cancel()
        if self._readers:
            await asyncio.gather(*self._readers, return_exceptions=True)
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
