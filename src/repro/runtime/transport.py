"""Pluggable message transports for the distributed runtime.

A :class:`Transport` moves :mod:`repro.protocol.messages` between actor
mailboxes (one :class:`asyncio.Queue` per node, owned by the
:class:`~repro.runtime.runtime.Runtime`).  Two implementations:

* :class:`InProcTransport` — pure asyncio queues.  Optionally applies a
  :class:`~repro.faults.plan.FaultPlan`'s control-plane loss model and a
  seeded per-message delivery delay, giving drop/duplication/reordering
  parity with the simulated :class:`~repro.faults.inject.FaultyNetwork`
  while running genuinely concurrently;
* :class:`TcpTransport` — one loopback TCP socket per tree edge, carrying
  the length-prefixed JSON frames of :mod:`repro.runtime.codec`.  The
  child endpoint of every edge dials its parent's listener and introduces
  itself with a hello frame; after the handshake both directions of the
  edge ride the same socket.  ``close()`` drains every writer before
  closing, so no ack is lost to shutdown.

Both transports tally ``messages_sent`` / ``bytes_sent`` (the *model*
bytes of :func:`~repro.protocol.messages.wire_size`, so counters are
comparable across the simulated and real paths) and ``dropped`` /
``duplicated`` (faults they injected themselves).  The TCP transport
additionally counts the real octets written in ``octets_sent``.

The virtual-parent link that seeds the root is process-local on every
transport — never serialised, never perturbed — mirroring the simulated
network's convention.
"""

from __future__ import annotations

import asyncio
import json
from abc import ABC, abstractmethod
from typing import Dict, Hashable, Optional, Set, Tuple

from ..exceptions import ProtocolError
from ..faults.inject import LinkFaultDecider
from ..faults.plan import FaultPlan
from ..platform.tree import Tree
from ..protocol.messages import Message, wire_size
from .codec import LENGTH_PREFIX, MAX_FRAME, encode_frame, read_frame


class Transport(ABC):
    """Delivers protocol messages between the runtime's actor mailboxes."""

    def __init__(self) -> None:
        self.tree: Optional[Tree] = None
        self.mailboxes: Dict[Hashable, asyncio.Queue] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.duplicated = 0

    async def start(self, tree: Tree,
                    mailboxes: Dict[Hashable, asyncio.Queue]) -> None:
        """Bind to the platform; must complete before the first send."""
        self.tree = tree
        self.mailboxes = mailboxes

    @abstractmethod
    async def send(self, message: Message) -> None:
        """Route one message toward its receiver's mailbox."""

    async def close(self) -> None:
        """Graceful shutdown: flush in-flight traffic, release resources."""

    # ------------------------------------------------------------------
    def _deliver_local(self, message: Message) -> None:
        mailbox = self.mailboxes.get(message.receiver)
        if mailbox is None:
            raise ProtocolError(f"no mailbox for {message.receiver!r}")
        mailbox.put_nowait(message)

    def _on_tree_link(self, message: Message) -> Optional[Hashable]:
        """The child endpoint of the message's link, ``None`` off-tree."""
        tree = self.tree
        a, b = message.sender, message.receiver
        if a not in tree or b not in tree:
            return None  # virtual-parent traffic: always local, never faulty
        if tree.parent(b) == a:
            return b
        if tree.parent(a) == b:
            return a
        raise ProtocolError(f"{a!r} and {b!r} are not adjacent")


class InProcTransport(Transport):
    """Asyncio-queue transport, optionally lossy and delayed.

    *plan* applies the fault plan's per-link drop/duplication model; its
    decisions are keyed by message ``xid`` and occurrence
    (:class:`~repro.faults.inject.LinkFaultDecider`), so the fault trace is
    the same one :class:`~repro.faults.inject.FaultyNetwork` injects into
    the simulated negotiation — concurrency cannot change which messages
    die.  *max_delay* (wall seconds) adds a seeded uniform delivery delay
    per message, exercising reordering; with ``max_delay=0`` delivery is
    immediate and in send order.
    """

    def __init__(self, plan: Optional[FaultPlan] = None,
                 max_delay: float = 0.0, seed: int = 0):
        super().__init__()
        if max_delay < 0:
            raise ProtocolError("max_delay must be >= 0")
        self.plan = plan
        self.max_delay = max_delay
        self._decision_plan = plan if plan is not None else FaultPlan(seed=seed)
        self._decider = LinkFaultDecider(self._decision_plan)
        self._pending: Set[asyncio.Task] = set()

    async def send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += wire_size(message)
        child = self._on_tree_link(message)
        copies = 1
        coordinates = None
        if child is not None and (self.plan is not None or self.max_delay):
            coordinates = self._decider.coordinates(message)
        if child is not None and self.plan is not None and self.plan.lossy:
            drop = (
                self._decision_plan.decision("drop", *coordinates)
                < self._decision_plan.link_drop(child)
            )
            duplicate = (
                self._decision_plan.decision("duplicate", *coordinates)
                < self._decision_plan.link_duplicate(child)
            )
            if drop:
                self.dropped += 1
                return
            if duplicate:
                self.duplicated += 1
                copies = 2
        for copy in range(copies):
            if child is not None and self.max_delay:
                delay = self.max_delay * self._decision_plan.decision(
                    "delay", copy, *coordinates
                )
                task = asyncio.ensure_future(self._deliver_late(message, delay))
                self._pending.add(task)
                task.add_done_callback(self._pending.discard)
            else:
                self._deliver_local(message)

    async def _deliver_late(self, message: Message, delay: float) -> None:
        await asyncio.sleep(delay)
        self._deliver_local(message)

    async def close(self) -> None:
        for task in list(self._pending):
            task.cancel()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        self._pending.clear()


class TcpTransport(Transport):
    """One loopback TCP socket per tree edge, length-prefixed JSON frames.

    Every node runs a listener; during :meth:`start`, the child endpoint
    of each edge dials its parent and sends a hello frame naming itself.
    Start returns only once every edge is connected in both directions, so
    the negotiation never races the handshake.

    *plan* injects the fault plan's drop model **at the sender**, before
    the frame reaches the socket — TCP itself never loses data, so this is
    how a lossy control plane is staged for wall-clock retry testing.
    Duplication writes the frame twice.
    """

    def __init__(self, host: str = "127.0.0.1",
                 plan: Optional[FaultPlan] = None):
        super().__init__()
        self.host = host
        self.plan = plan
        self._decider = LinkFaultDecider(plan) if plan is not None else None
        self.octets_sent = 0
        self._servers: Dict[Hashable, asyncio.AbstractServer] = {}
        self._writers: Dict[Tuple[Hashable, Hashable],
                            asyncio.StreamWriter] = {}
        self._readers: Set[asyncio.Task] = set()
        self._edges_ready: Optional[asyncio.Event] = None
        self._expected_edges = 0
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    async def start(self, tree: Tree,
                    mailboxes: Dict[Hashable, asyncio.Queue]) -> None:
        await super().start(tree, mailboxes)
        self._edges_ready = asyncio.Event()
        edges = [(tree.parent(n), n) for n in tree.nodes()
                 if tree.parent(n) is not None]
        self._expected_edges = len(edges)
        ports: Dict[Hashable, int] = {}
        for node in tree.nodes():
            server = await asyncio.start_server(
                self._make_accept_handler(node), host=self.host, port=0
            )
            self._servers[node] = server
            ports[node] = server.sockets[0].getsockname()[1]
        for parent, child in edges:
            reader, writer = await asyncio.open_connection(
                self.host, ports[parent]
            )
            hello = json.dumps({"hello": child},
                               separators=(",", ":")).encode("utf-8")
            writer.write(LENGTH_PREFIX.pack(len(hello)) + hello)
            await writer.drain()
            self._writers[(child, parent)] = writer
            self._spawn_reader(child, reader)
        if self._expected_edges == 0:
            self._edges_ready.set()
        await self._edges_ready.wait()
        if self._failure is not None:
            raise self._failure

    def _make_accept_handler(self, owner: Hashable):
        async def accept(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            try:
                prefix = await reader.readexactly(LENGTH_PREFIX.size)
                (length,) = LENGTH_PREFIX.unpack(prefix)
                if length > MAX_FRAME:
                    raise ProtocolError("oversized hello frame")
                hello = json.loads(
                    (await reader.readexactly(length)).decode("utf-8")
                )
                peer = hello["hello"]
            except (asyncio.IncompleteReadError, ValueError, KeyError) as exc:
                self._failure = ProtocolError(
                    f"bad handshake on {owner!r}'s listener"
                )
                self._failure.__cause__ = exc
                self._edges_ready.set()
                writer.close()
                return
            self._writers[(owner, peer)] = writer
            self._spawn_reader(owner, reader)
            if len(self._writers) >= 2 * self._expected_edges:
                self._edges_ready.set()

        return accept

    def _spawn_reader(self, owner: Hashable,
                      reader: asyncio.StreamReader) -> None:
        task = asyncio.ensure_future(self._read_loop(owner, reader))
        self._readers.add(task)
        task.add_done_callback(self._readers.discard)

    async def _read_loop(self, owner: Hashable,
                         reader: asyncio.StreamReader) -> None:
        """Decode frames arriving at *owner*'s end of one edge."""
        mailbox = self.mailboxes[owner]
        while True:
            message = await read_frame(reader)
            if message is None:
                return  # peer drained and closed: clean shutdown
            mailbox.put_nowait(message)

    # ------------------------------------------------------------------
    async def send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += wire_size(message)
        child = self._on_tree_link(message)
        if child is None:
            self._deliver_local(message)
            return
        writer = self._writers.get((message.sender, message.receiver))
        if writer is None:
            raise ProtocolError(
                f"no socket for edge {message.sender!r}→{message.receiver!r}"
            )
        copies = 1
        if self._decider is not None:
            drop, duplicate = self._decider.verdict(child, message)
            if drop:
                self.dropped += 1
                return
            if duplicate:
                self.duplicated += 1
                copies = 2
        frame = encode_frame(message)
        for _ in range(copies):
            writer.write(frame)
            self.octets_sent += len(frame)
        await writer.drain()

    async def close(self) -> None:
        """Drain-and-close: flush every socket, then tear down listeners."""
        for writer in self._writers.values():
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        self._writers.clear()
        for task in list(self._readers):
            task.cancel()
        if self._readers:
            await asyncio.gather(*self._readers, return_exceptions=True)
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
