"""The multiple-port model of Shao et al. (Section 2 related work).

Shao et al. solved steady-state Master–Worker tasking with a network-flow
approach under the **multiple-port, full-overlap** model, "where the number
of simultaneous communications for a given node is not bounded": each *link*
still carries at most ``1/c`` tasks per time unit, but a node may drive all
its links at once — there is no shared send-port budget.

This module quantifies what the single-port restriction costs:

* :func:`multiport_lp_throughput` — exact optimal throughput under the
  multiple-port model (drop the send-port rows, keep per-link capacities);
* :func:`multiport_throughput` — the same by direct combinatorial
  evaluation: without port coupling, each subtree independently absorbs
  ``min(b_in, r + Σ children)``, so a single bottom-up sweep suffices
  (cross-checked against the LP in the tests);
* :func:`port_gap_report` — single-port vs multi-port throughput on one
  platform, the ablation of experiment E15.

The multi-port optimum is always ≥ the single-port one, with equality when
no node's send port is the binding resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Tuple

from ..core.bwfirst import bw_first
from ..core.rates import ONE, ZERO
from ..core.simplex import solve_lp
from ..platform.tree import Tree


def multiport_throughput(tree: Tree) -> Fraction:
    """Optimal steady-state throughput under the multiple-port model.

    Bottom-up: each subtree absorbs its own compute rate plus whatever its
    children absorb, capped only by its incoming link bandwidth — the ports
    impose no coupling between siblings.
    """
    absorb: Dict[Hashable, Fraction] = {}
    stack: List[Tuple[Hashable, bool]] = [(tree.root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            for child in tree.children(node):
                stack.append((child, False))
            continue
        total = tree.rate(node)
        for child in tree.children(node):
            total += absorb[child]
        if tree.parent(node) is not None:
            total = min(total, ONE / tree.c(node))
        absorb[node] = total
    return absorb[tree.root]


def multiport_lp_throughput(tree: Tree) -> Fraction:
    """The multiple-port optimum by exact LP (independent cross-check).

    Same variables and conservation rows as the single-port LP, but the
    send-port rows ``Σ c_e s_e ≤ 1`` are replaced by per-link capacities
    ``c_e s_e ≤ 1`` (which equal the receive-port rows and are kept once).
    """
    nodes = list(tree.nodes())
    edges = [(p, ch) for p, ch, _ in tree.edges()]
    alpha_index = {node: i for i, node in enumerate(nodes)}
    edge_index = {edge: len(nodes) + j for j, edge in enumerate(edges)}
    num_vars = len(nodes) + len(edges)

    def zeros() -> List[Fraction]:
        return [ZERO] * num_vars

    c_obj = zeros()
    for node in nodes:
        c_obj[alpha_index[node]] = ONE

    a_ub: List[List[Fraction]] = []
    b_ub: List[Fraction] = []
    a_eq: List[List[Fraction]] = []
    b_eq: List[Fraction] = []

    for node in nodes:
        row = zeros()
        row[alpha_index[node]] = ONE
        a_ub.append(row)
        b_ub.append(tree.rate(node))

        if node != tree.root:
            parent = tree.parent(node)
            in_var = edge_index[(parent, node)]

            # per-link capacity (the only communication constraint left)
            row = zeros()
            row[in_var] = tree.c(node)
            a_ub.append(row)
            b_ub.append(ONE)

            # conservation
            row = zeros()
            row[in_var] = ONE
            row[alpha_index[node]] = -ONE
            for child in tree.children(node):
                row[edge_index[(node, child)]] = -ONE
            a_eq.append(row)
            b_eq.append(ZERO)

    result = solve_lp(c_obj, a_ub, b_ub, a_eq, b_eq).require_optimal()
    return result.objective


@dataclass(frozen=True)
class PortGapReport:
    """Single-port vs multiple-port throughput on one platform."""

    single_port: Fraction
    multi_port: Fraction

    @property
    def gap(self) -> Fraction:
        """Fraction of the multi-port optimum lost to the single port."""
        if self.multi_port == 0:
            return Fraction(0)
        return 1 - self.single_port / self.multi_port


def port_gap_report(tree: Tree) -> PortGapReport:
    """Measure the cost of the single-port restriction on *tree*."""
    return PortGapReport(
        single_port=bw_first(tree).throughput,
        multi_port=multiport_throughput(tree),
    )
