"""Returning results to the master: the Section 9 model and counterexample.

Section 9 shows that folding the result-return time into the task-send time
(as Beaumont et al. and Kreaseck et al. do) is **wrong**: it accounts for
link traffic but ignores the *receive-port* resource.  With separate flows,
a node's ports carry:

* **send port** — tasks to children *and* results to its parent;
* **receive port** — tasks from its parent *and* results from children.

At steady state the result flow up an edge equals the task flow down it
(every task delivered into a subtree is computed there), so with task flow
``s_e`` on edge ``e`` (cost ``c_e`` down, ``d_e`` up) the port constraints
of node ``i`` become::

    send(i):  Σ_children c_e·s_e  +  d_in(i)·s_in(i)         ≤ 1   (root: no d term)
    recv(i):  c_in(i)·s_in(i)     +  Σ_children d_e·s_e      ≤ 1   (root: no c term)

:func:`return_lp_throughput` maximises ``Σ α_i`` under these constraints
with the exact simplex.  On the paper's 3-node example
(``w = 1``, ``c = d = 1/2``) it yields **2 tasks per time unit**, while the
merged model (``c' = c + d = 1``) run through the bandwidth-centric
machinery yields only **1** — the counterexample, reproduced by experiment
E11.  A small dedicated fork simulator (:func:`simulate_fork_with_returns`)
confirms the rate 2 is actually achievable in execution, not just in the LP.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.bwfirst import bw_first
from ..core.rates import ONE, ZERO, as_cost
from ..core.simplex import solve_lp
from ..exceptions import PlatformError, SimulationError
from ..platform.tree import Tree
from ..sim.engine import Engine
from ..sim.tracing import COMPUTE, RECV, SEND, Trace


@dataclass(frozen=True)
class ReturnPlatform:
    """A tree platform whose edges also carry per-task result-return times.

    ``tree`` holds the downward (task) communication times ``c``;
    ``return_cost`` maps each non-root node to the upward (result) time
    ``d`` of its incoming edge.
    """

    tree: Tree
    return_cost: Mapping[Hashable, Fraction]

    def d(self, node: Hashable) -> Fraction:
        try:
            return self.return_cost[node]
        except KeyError:
            raise PlatformError(f"no return cost for node {node!r}") from None

    def merged_tree(self) -> Tree:
        """The (erroneous) merged model: one edge cost ``c + d``."""
        tree = self.tree
        merged = Tree(tree.root, tree.w(tree.root))
        for node in tree.nodes():
            if node == tree.root:
                continue
            merged.add_node(
                node,
                tree.w(node),
                parent=tree.parent(node),
                c=tree.c(node) + self.d(node),
            )
        return merged


def uniform_return_platform(tree: Tree, ratio=1) -> ReturnPlatform:
    """Wrap *tree* with return costs ``d = ratio × c`` on every edge."""
    factor = as_cost(ratio)
    costs = {
        node: tree.c(node) * factor for node in tree.nodes() if node != tree.root
    }
    return ReturnPlatform(tree=tree, return_cost=costs)


def return_lp_throughput(platform: ReturnPlatform) -> Fraction:
    """Exact optimal steady-state throughput with result returns."""
    tree = platform.tree
    nodes = list(tree.nodes())
    edges = [(p, ch) for p, ch, _ in tree.edges()]
    alpha_index = {node: i for i, node in enumerate(nodes)}
    edge_index = {edge: len(nodes) + j for j, edge in enumerate(edges)}
    num_vars = len(nodes) + len(edges)

    def zeros() -> List[Fraction]:
        return [ZERO] * num_vars

    c_obj = zeros()
    for node in nodes:
        c_obj[alpha_index[node]] = ONE

    a_ub: List[List[Fraction]] = []
    b_ub: List[Fraction] = []
    a_eq: List[List[Fraction]] = []
    b_eq: List[Fraction] = []

    for node in nodes:
        kids = tree.children(node)

        # compute capacity
        row = zeros()
        row[alpha_index[node]] = ONE
        a_ub.append(row)
        b_ub.append(tree.rate(node))

        # send port: tasks to children + results to parent
        row = zeros()
        for child in kids:
            row[edge_index[(node, child)]] += tree.c(child)
        if node != tree.root:
            row[edge_index[(tree.parent(node), node)]] += platform.d(node)
        if any(v != 0 for v in row):
            a_ub.append(row)
            b_ub.append(ONE)

        # receive port: tasks from parent + results from children
        row = zeros()
        if node != tree.root:
            row[edge_index[(tree.parent(node), node)]] += tree.c(node)
        for child in kids:
            row[edge_index[(node, child)]] += platform.d(child)
        if any(v != 0 for v in row):
            a_ub.append(row)
            b_ub.append(ONE)

        # conservation
        if node != tree.root:
            row = zeros()
            row[edge_index[(tree.parent(node), node)]] = ONE
            row[alpha_index[node]] = -ONE
            for child in kids:
                row[edge_index[(node, child)]] = -ONE
            a_eq.append(row)
            b_eq.append(ZERO)

    result = solve_lp(c_obj, a_ub, b_ub, a_eq, b_eq).require_optimal()
    return result.objective


def merged_model_throughput(platform: ReturnPlatform) -> Fraction:
    """Throughput under the merged single-cost simplification."""
    return bw_first(platform.merged_tree()).throughput


@dataclass(frozen=True)
class CounterexampleReport:
    """Both throughputs on one platform: the Section 9 comparison."""

    separate_ports: Fraction
    merged_model: Fraction

    @property
    def understatement(self) -> Fraction:
        """How much the merged model understates the true optimum."""
        if self.merged_model == 0:
            return Fraction(0)
        return self.separate_ports / self.merged_model


def section9_counterexample() -> CounterexampleReport:
    """The paper's 3-node counterexample: 2 vs 1 tasks per time unit."""
    from ..platform.examples import section9_platform

    platform = uniform_return_platform(section9_platform(), ratio=1)
    return CounterexampleReport(
        separate_ports=return_lp_throughput(platform),
        merged_model=merged_model_throughput(platform),
    )


# ----------------------------------------------------------------------
# execution-level confirmation: a dedicated fork simulator with returns
# ----------------------------------------------------------------------
def simulate_fork_with_returns(
    platform: ReturnPlatform,
    horizon,
    max_events: int = 2_000_000,
) -> Trace:
    """Simulate a *fork* platform (master + leaf children) with returns.

    Scope: one-level trees only — enough to confirm the Section 9 rate in
    actual execution.  Each child pipeline is: receive a task (its receive
    port + master's send port), compute it, return the result (its send
    port + master's receive port, FIFO-arbitrated among children).  The
    master eagerly keeps every child fed (one task queued ahead).

    Returns the trace; completions are counted at *result arrival* at the
    master, the moment a task is truly finished for the application.
    """
    tree = platform.tree
    master = tree.root
    children = list(tree.children(master))
    for child in children:
        if not tree.is_leaf(child):
            raise SimulationError("simulate_fork_with_returns needs a fork platform")
    hor = Fraction(horizon)

    engine = Engine()
    trace = Trace()

    master_send_busy = [False]
    master_recv_busy = [False]
    return_queue: List[Hashable] = []  # children waiting to return a result
    feed_queue: List[Hashable] = []    # children owed a task, FIFO

    # per child: tasks buffered (not yet computed), computing?, results ready
    buffered: Dict[Hashable, int] = {c: 0 for c in children}
    computing: Dict[Hashable, bool] = {c: False for c in children}
    results: Dict[Hashable, int] = {c: 0 for c in children}
    child_send_busy: Dict[Hashable, bool] = {c: False for c in children}
    in_flight_to: Dict[Hashable, int] = {c: 0 for c in children}

    def want_feed(child: Hashable) -> bool:
        # keep one task computing and one buffered ahead
        backlog = buffered[child] + in_flight_to[child] + (1 if computing[child] else 0)
        return backlog < 2

    def pump_master_send() -> None:
        if master_send_busy[0] or engine.now >= hor:
            return
        for child in children:
            if child in feed_queue:
                continue
            if want_feed(child):
                feed_queue.append(child)
        if not feed_queue:
            return
        child = feed_queue.pop(0)
        master_send_busy[0] = True
        in_flight_to[child] += 1
        start = engine.now
        end = start + tree.c(child)
        trace.add_segment(master, SEND, start, end, peer=child)
        trace.add_segment(child, RECV, start, end, peer=master)

        def done(ch=child):
            master_send_busy[0] = False
            in_flight_to[ch] -= 1
            buffered[ch] += 1
            trace.add_arrival(engine.now, ch)
            trace.add_buffer_delta(engine.now, ch, +1)
            pump_child(ch)
            pump_master_send()

        engine.schedule_at(end, done)

    def pump_child(child: Hashable) -> None:
        # start computing
        if not computing[child] and buffered[child] > 0:
            computing[child] = True
            buffered[child] -= 1
            start = engine.now
            end = start + tree.w(child)
            trace.add_segment(child, COMPUTE, start, end)

            def compute_done(ch=child):
                computing[ch] = False
                results[ch] += 1
                if ch not in return_queue:
                    return_queue.append(ch)
                pump_returns()
                pump_child(ch)
                pump_master_send()

            engine.schedule_at(end, compute_done)

    def pump_returns() -> None:
        if master_recv_busy[0]:
            return
        for i, child in enumerate(return_queue):
            if child_send_busy[child] or results[child] == 0:
                continue
            return_queue.pop(i)
            master_recv_busy[0] = True
            child_send_busy[child] = True
            results[child] -= 1
            start = engine.now
            end = start + platform.d(child)
            trace.add_segment(child, SEND, start, end, peer=master)
            trace.add_segment(master, RECV, start, end, peer=child)

            def done(ch=child):
                master_recv_busy[0] = False
                child_send_busy[ch] = False
                trace.add_completion(engine.now, ch)
                trace.add_buffer_delta(engine.now, ch, -1)
                if results[ch] > 0 and ch not in return_queue:
                    return_queue.append(ch)
                pump_returns()
                pump_master_send()

            engine.schedule_at(end, done)
            return

    pump_master_send()
    engine.run_all(max_events=max_events)
    return trace
