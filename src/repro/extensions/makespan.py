"""Finite-N makespan via the steady-state schedule (the Dutot problem).

Makespan minimisation on heterogeneous trees is NP-hard (Dutot, cited in
Section 2); the paper argues its scheduling strategy is "a good heuristic
candidate" because it attains the optimal throughput with quick start-up and
wind-down phases.  This module turns that argument into a measurable
heuristic:

* :func:`makespan_lower_bound` — ``N / ρ*`` with ``ρ*`` the optimal
  steady-state throughput: no schedule can beat it (each of the ``N`` tasks
  must be computed somewhere, and the platform computes at most ``ρ*``
  tasks per time unit in any time window... asymptotically);
* :func:`steady_state_makespan` — simulate the event-driven schedule with a
  supply of exactly ``N`` tasks and report when the last one completes;
* :func:`makespan_report` — both numbers and their ratio, which tends to 1
  as ``N`` grows (experiment ``bench_e4``/examples use it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..core.allocation import Allocation, from_bw_first
from ..core.bwfirst import bw_first
from ..exceptions import ScheduleError
from ..platform.tree import Tree
from ..schedule.local import interleaved_order
from ..sim.simulator import SimulationResult, simulate


def makespan_lower_bound(tree: Tree, n_tasks: int) -> Fraction:
    """The steady-state bound ``N / ρ*`` on any schedule's makespan."""
    if n_tasks < 0:
        raise ScheduleError("task count must be non-negative")
    throughput = bw_first(tree).throughput
    if throughput == 0:
        raise ScheduleError("platform has no computing power")
    return Fraction(n_tasks) / throughput


def steady_state_makespan(
    tree: Tree,
    n_tasks: int,
    allocation: Optional[Allocation] = None,
    policy: Callable = interleaved_order,
) -> SimulationResult:
    """Run the paper's schedule on a supply of exactly *n_tasks* tasks.

    The returned result's ``end_time`` is the measured makespan (time of the
    last completion; every released task is computed, which the caller can
    assert via ``completed == n_tasks``).
    """
    if n_tasks <= 0:
        raise ScheduleError("need at least one task")
    return simulate(tree, allocation=allocation, policy=policy, supply=n_tasks)


@dataclass(frozen=True)
class MakespanReport:
    """Lower bound vs achieved makespan for one (tree, N) instance."""

    n_tasks: int
    lower_bound: Fraction
    makespan: Fraction
    completed: int

    @property
    def ratio(self) -> Fraction:
        """Achieved / bound — approaches 1 as N grows."""
        return self.makespan / self.lower_bound


def makespan_report(tree: Tree, n_tasks: int) -> MakespanReport:
    """Measure the heuristic against the bound on one instance."""
    bound = makespan_lower_bound(tree, n_tasks)
    result = steady_state_makespan(tree, n_tasks)
    if result.completed != n_tasks:
        raise ScheduleError(
            f"simulation completed {result.completed} of {n_tasks} tasks"
        )
    return MakespanReport(
        n_tasks=n_tasks,
        lower_bound=bound,
        makespan=result.end_time,
        completed=result.completed,
    )
