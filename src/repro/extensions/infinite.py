"""BW-First on infinite trees (the Bataineh–Robertazzi discussion).

Section 5 notes that, unlike the bottom-up method (which must start from the
leaves), BW-First can evaluate the throughput of **infinite** network trees:
the traversal expands a node's children only while the parent still has
tasks (δ > 0) and port time (τ > 0) to offer.

On a platform where bandwidth saturates, the traversal terminates by
itself.  In general it may not (a fast-link infinite chain absorbs tasks at
every depth), so :func:`infinite_throughput` adds a *proposal cut-off*
``tol``: a subtree offered less than ``tol`` tasks per time unit is not
expanded.  Because any subtree consumes between nothing and everything it
is offered, treating cut subtrees as consuming 0 gives a certified **lower
bound** and treating them as consuming β gives a certified **upper bound**;
the two bracket the true infinite-tree throughput within the sum of the
cut proposals.

Trees are described lazily by an :class:`InfiniteTreeSpec`; finite
truncations for convergence studies (experiment E12) come from
:func:`truncate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..core.rates import ONE, ZERO, as_weight, rate_of
from ..exceptions import ScheduleError
from ..platform.tree import Tree

#: A lazily-generated child: (name, weight w, edge cost c).
ChildSpec = Tuple[Hashable, object, object]


@dataclass(frozen=True)
class InfiniteTreeSpec:
    """A lazily-generated (possibly infinite) tree platform.

    ``root`` names the root, ``root_w`` its weight, and ``children(node)``
    returns the (possibly empty) child list of any node on demand.
    Generators must be deterministic: the same node always yields the same
    children.
    """

    root: Hashable
    root_w: object
    children: Callable[[Hashable], Sequence[ChildSpec]]


@dataclass(frozen=True)
class InfiniteThroughput:
    """Certified bracket on an infinite tree's optimal throughput."""

    lower: Fraction
    upper: Fraction
    visited: int          # nodes expanded
    cut: int              # subtrees truncated by the tolerance

    @property
    def width(self) -> Fraction:
        return self.upper - self.lower


def infinite_throughput(
    spec: InfiniteTreeSpec,
    tol: Fraction = Fraction(1, 1000),
    max_nodes: int = 100_000,
) -> InfiniteThroughput:
    """Run BW-First lazily on *spec* with a proposal cut-off of *tol*.

    Returns lower/upper bounds whose gap is at most the sum of cut-off
    proposals.  Raises :class:`~repro.exceptions.ScheduleError` when more
    than *max_nodes* nodes must be expanded (tolerance too small for a
    too-absorbent tree).
    """
    if tol <= 0:
        raise ScheduleError("tolerance must be positive")

    visited = 0
    cut = 0
    slack = [ZERO]  # total proposal mass given away at cut subtrees

    import sys

    def visit(node: Hashable, weight, lam: Fraction, depth: int) -> Fraction:
        """Returns θ under the pessimistic (lower-bound) interpretation."""
        nonlocal visited, cut
        visited += 1
        if visited > max_nodes:
            raise ScheduleError(
                f"expanded more than {max_nodes} nodes; raise tol or max_nodes"
            )
        rate = rate_of(as_weight(weight))
        alpha = min(rate, lam)
        delta = lam - alpha
        tau = ONE
        kids = sorted(spec.children(node), key=lambda kc: Fraction(kc[2]))
        for child_name, child_w, child_c in kids:
            if delta <= 0 or tau <= 0:
                break
            c = Fraction(child_c)
            beta = min(delta, tau / c)
            if beta < tol:
                # cut: pessimistically the subtree consumes nothing
                cut += 1
                slack[0] += beta
                continue
            theta = visit(child_name, child_w, beta, depth + 1)
            accepted = beta - theta
            delta -= accepted
            tau -= accepted * c
        return delta

    # the virtual-parent proposal: r_root + best child bandwidth
    root_rate = rate_of(as_weight(spec.root_w))
    kids = spec.children(spec.root)
    t_max = root_rate
    if kids:
        t_max += max(ONE / Fraction(c) for _, _, c in kids)

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, max_nodes + 100))
    try:
        theta = visit(spec.root, spec.root_w, t_max, 0)
    finally:
        sys.setrecursionlimit(old_limit)
    lower = t_max - theta
    upper = lower + slack[0]
    return InfiniteThroughput(lower=lower, upper=upper, visited=visited, cut=cut)


def truncate(spec: InfiniteTreeSpec, depth: int) -> Tree:
    """The finite tree of all *spec* nodes within *depth* edges of the root."""
    if depth < 0:
        raise ScheduleError("depth must be non-negative")
    tree = Tree(spec.root, spec.root_w)
    frontier: List[Tuple[Hashable, int]] = [(spec.root, 0)]
    while frontier:
        node, d = frontier.pop()
        if d == depth:
            continue
        for child_name, child_w, child_c in spec.children(node):
            tree.add_node(child_name, child_w, parent=node, c=child_c)
            frontier.append((child_name, d + 1))
    return tree


# ----------------------------------------------------------------------
# ready-made infinite families
# ----------------------------------------------------------------------
def uniform_binary(w=1, c=2) -> InfiniteTreeSpec:
    """The infinite complete binary tree with identical nodes and links."""

    def children(node: Hashable) -> Sequence[ChildSpec]:
        return [(f"{node}.0", w, c), (f"{node}.1", w, c)]

    return InfiniteTreeSpec(root="R", root_w=w, children=children)


def geometric_chain(w=1, c0=1, growth=Fraction(3, 2)) -> InfiniteTreeSpec:
    """An infinite chain whose link costs grow geometrically.

    With growth > 1 the proposals shrink geometrically with depth, so the
    lazy traversal reaches any cut-off tolerance after logarithmically many
    nodes and the resulting bracket is tight.
    """

    def children(node: Hashable) -> Sequence[ChildSpec]:
        depth = node.count(".") if isinstance(node, str) else 0
        cost = Fraction(c0) * (Fraction(growth) ** depth)
        return [(f"{node}.n", w, cost)]

    return InfiniteTreeSpec(root="R", root_w=w, children=children)
