"""Dynamic adaptation: re-negotiating when the platform drifts (Section 5).

The paper sketches the strategy: the root monitors throughput and, when it
drops below a threshold, re-initiates the BW-First procedure to capture the
platform's new state — arguing the negotiation is negligible because its
messages are single numbers.  This module makes the scenario concrete:

1. the schedule is negotiated on the *believed* platform;
2. the platform drifts (some links slow down, some nodes slow down);
3. :func:`degraded_rate` simulates the **old** schedule running on the
   **new** platform (the simulator is work-conserving, so an overloaded link
   simply stretches the pipeline and the achieved rate drops);
4. re-running the protocol on the new platform restores the new optimum and
   its cost (messages, bytes, wall-clock) is measured.

Experiment E13 reports the drop, the recovery, and the negotiation overhead
relative to one steady-state period of task traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Mapping, Optional

from ..core.allocation import Allocation, from_bw_first
from ..core.bwfirst import bw_first
from ..core.incremental import resolve_solver
from ..core.rates import as_cost, as_weight
from ..exceptions import PlatformError
from ..platform.tree import Tree
from ..protocol.runner import ProtocolResult, run_protocol
from ..schedule.periods import global_period, tree_periods
from ..sim.simulator import simulate
from .. import analysis


def perturb(
    tree: Tree,
    edge_factors: Optional[Mapping[Hashable, object]] = None,
    node_factors: Optional[Mapping[Hashable, object]] = None,
) -> Tree:
    """A copy of *tree* with selected links/nodes slowed down (or sped up).

    *edge_factors* maps a node to the multiplier applied to its incoming
    edge's ``c``; *node_factors* maps a node to the multiplier applied to
    its ``w``.  Factors > 1 model degradation.
    """
    edge_factors = edge_factors or {}
    node_factors = node_factors or {}
    for name in list(edge_factors) + list(node_factors):
        if name not in tree:
            raise PlatformError(f"unknown node {name!r} in perturbation")

    def new_w(node):
        w = tree.w(node)
        if node in node_factors and not tree.is_switch(node):
            return w * as_cost(node_factors[node])
        return w

    out = Tree(tree.root, new_w(tree.root))
    for node in tree.nodes():
        if node == tree.root:
            continue
        c = tree.c(node)
        if node in edge_factors:
            c = c * as_cost(edge_factors[node])
        out.add_node(node, new_w(node), parent=tree.parent(node), c=c)
    return out


def degraded_rate(
    believed: Tree,
    actual: Tree,
    periods_to_run: int = 12,
    measure_tail: int = 4,
    allocation: Optional[Allocation] = None,
    periods=None,
    schedules=None,
) -> Fraction:
    """The rate the *believed* schedule actually achieves on *actual*.

    Runs the believed optimal event-driven schedule on the actual platform
    for ``periods_to_run`` believed global periods and measures the average
    rate over the last ``measure_tail`` of them.  *allocation* supplies an
    already-computed believed allocation so :func:`adapt` does not solve
    the believed platform twice; *periods*/*schedules* likewise accept an
    already-built reconstruction (e.g. a fragment-cached one).
    """
    if allocation is None:
        allocation = from_bw_first(bw_first(believed))
    if periods is None:
        periods = tree_periods(allocation)
    period = global_period(periods, tree=believed)
    horizon = Fraction(period) * periods_to_run
    # same schedule (allocation computed on the believed platform), executed
    # on the actual platform's link/node speeds
    from ..schedule.eventdriven import build_schedules
    from ..sim.simulator import Simulation

    if schedules is None:
        schedules = build_schedules(allocation, periods=periods)
    sim = Simulation(actual, schedules, periods, horizon=horizon)
    result = sim.run()
    start = Fraction(period) * (periods_to_run - measure_tail)
    return analysis.measured_rate(result.trace, start, horizon)


@dataclass(frozen=True)
class AdaptationReport:
    """Outcome of one drift-and-readapt scenario."""

    old_throughput: Fraction
    new_throughput: Fraction
    degraded_throughput: Fraction
    renegotiation: ProtocolResult

    @property
    def drop(self) -> Fraction:
        """Fraction of the old optimum lost by not adapting."""
        if self.old_throughput == 0:
            return Fraction(0)
        return 1 - self.degraded_throughput / self.old_throughput

    @property
    def recovered(self) -> Fraction:
        """Fraction of the new optimum recovered by re-negotiating (= 1)."""
        if self.new_throughput == 0:
            return Fraction(1)
        return self.renegotiation.throughput / self.new_throughput


def adapt(
    believed: Tree,
    actual: Tree,
    latency_factor=Fraction(1, 100),
    periods_to_run: int = 12,
    solver=None,
) -> AdaptationReport:
    """Quantify a drift scenario end to end (see the module docstring).

    The believed and actual platforms are each solved exactly **once**:
    the believed solution is reused by :func:`degraded_rate` (via its
    ``allocation=``) and the actual one is handed to
    :func:`~repro.protocol.runner.run_protocol` as its verification
    reference — the seed version solved each platform twice.  *solver*
    (see :func:`~repro.core.incremental.resolve_solver`) additionally
    makes the actual-platform solve incremental over the believed one by
    default; ``"full"`` keeps the two independent ``bw_first`` runs.
    """
    inc = resolve_solver(solver, believed)
    old_result = bw_first(believed) if inc is None else inc.solve()
    old_allocation = from_bw_first(old_result)
    old_periods = old_schedules = None
    if inc is not None:
        # reconstruct through the fragment cache *before* apply_platform
        # invalidates the solver's snapshot
        old_periods, old_schedules = inc.schedule_builder().build(old_allocation)
    if inc is None:
        new_result = bw_first(actual)
    else:
        try:
            inc.apply_platform(actual)
        except PlatformError:  # drifted topology: fall back to a full solve
            new_result = bw_first(actual)
        else:
            new_result = inc.solve()
    degraded = degraded_rate(believed, actual, periods_to_run=periods_to_run,
                             allocation=old_allocation,
                             periods=old_periods, schedules=old_schedules)
    renegotiation = run_protocol(actual, latency_factor=latency_factor,
                                 reference=new_result)
    return AdaptationReport(
        old_throughput=old_result.throughput,
        new_throughput=new_result.throughput,
        degraded_throughput=degraded,
        renegotiation=renegotiation,
    )
