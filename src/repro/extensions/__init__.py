"""Extensions beyond the paper's core: its future-work and discussion items.

* :mod:`~repro.extensions.result_return` — the Section 9 two-port model and
  counterexample;
* :mod:`~repro.extensions.dynamic` — drift + re-negotiation scenarios;
* :mod:`~repro.extensions.makespan` — the finite-N makespan heuristic;
* :mod:`~repro.extensions.infinite` — BW-First on lazily-generated infinite
  trees with certified throughput brackets.
"""

from .dynamic import AdaptationReport, adapt, degraded_rate, perturb
from .infinite import (
    InfiniteThroughput,
    InfiniteTreeSpec,
    geometric_chain,
    infinite_throughput,
    truncate,
    uniform_binary,
)
from .makespan import (
    MakespanReport,
    makespan_lower_bound,
    makespan_report,
    steady_state_makespan,
)
from .online import OnlineReport, online_renegotiation
from .overlay_search import (
    OverlaySearchResult,
    enumerate_overlays,
    hill_climb,
    overlay_from_parents,
)
from .multiport import (
    PortGapReport,
    multiport_lp_throughput,
    multiport_throughput,
    port_gap_report,
)
from .return_sim import ReturnSimResult, ReturnSimulation, simulate_with_returns
from .result_return import (
    CounterexampleReport,
    ReturnPlatform,
    merged_model_throughput,
    return_lp_throughput,
    section9_counterexample,
    simulate_fork_with_returns,
    uniform_return_platform,
)

__all__ = [
    "AdaptationReport",
    "adapt",
    "degraded_rate",
    "perturb",
    "InfiniteTreeSpec",
    "InfiniteThroughput",
    "infinite_throughput",
    "truncate",
    "uniform_binary",
    "geometric_chain",
    "MakespanReport",
    "makespan_lower_bound",
    "makespan_report",
    "steady_state_makespan",
    "OnlineReport",
    "online_renegotiation",
    "OverlaySearchResult",
    "hill_climb",
    "enumerate_overlays",
    "overlay_from_parents",
    "PortGapReport",
    "multiport_throughput",
    "multiport_lp_throughput",
    "port_gap_report",
    "ReturnPlatform",
    "uniform_return_platform",
    "return_lp_throughput",
    "merged_model_throughput",
    "CounterexampleReport",
    "section9_counterexample",
    "simulate_fork_with_returns",
    "ReturnSimulation",
    "ReturnSimResult",
    "simulate_with_returns",
]
