"""Execution of the result-return model on *general* trees.

:mod:`repro.extensions.result_return` proves the Section 9 counterexample
with an exact LP and a fork-only simulator.  This module executes the
two-port model on arbitrary trees:

* every **task** transfer (parent → child, duration ``c``) occupies the
  parent's *send* port and the child's *receive* port;
* every **result** transfer (child → parent, duration ``d``) occupies the
  child's *send* port and the parent's *receive* port;
* a transfer starts only when **both** ports are free (non-interruptible);
  whenever a port frees, its neighbourhood re-evaluates;
* tasks flow down demand-driven (children request when under-buffered,
  parents serve fastest-link-first); results flow up store-and-forward —
  a node relays its children's results along with its own (result origin is
  tracked, so completions are attributed to the node that computed them);
* when both a task and a result are ready to use a node's send port, the
  node alternates between them, which keeps both pipelines live;
* by default the sender is *patient*: if the bandwidth-best requester's
  receive port is momentarily busy (absorbing a result), the sender waits
  for it instead of diverting the port to a slower link — without patience,
  every such collision steers whole transfers to low-priority children and
  the achieved rate drops measurably (``patient=False`` exposes that
  behaviour for study).

A task *completes* when its result reaches the root (tasks the root
computes itself complete on the spot).  The achieved steady rate is upper-
bounded by :func:`repro.extensions.result_return.return_lp_throughput`,
which the tests assert; on the Section 9 platform the simulator achieves
the LP optimum of 2 exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..core.rates import is_infinite
from ..exceptions import SimulationError
from ..platform.tree import Tree
from ..sim.engine import Engine
from ..sim.tracing import COMPUTE, RECV, SEND, Trace
from .result_return import ReturnPlatform


@dataclass
class ReturnSimResult:
    """Outcome of a general-tree result-return run."""

    trace: Trace
    platform: ReturnPlatform
    released: int
    stop_time: Optional[Fraction]
    end_time: Fraction

    @property
    def completed(self) -> int:
        """Tasks whose result reached the master."""
        return len(self.trace.completions)

    @property
    def wind_down(self) -> Optional[Fraction]:
        if self.stop_time is None or not self.trace.completions:
            return None
        return max(self.end_time - self.stop_time, Fraction(0))


class _State:
    __slots__ = ("stock", "results", "pending", "outstanding",
                 "computing", "send_busy", "recv_busy", "last_sent_kind")

    def __init__(self, children) -> None:
        self.stock = 0        # unassigned tasks buffered here
        self.results: "deque" = deque()  # origins of results waiting to go up
        self.pending: Dict[Hashable, int] = {c: 0 for c in children}
        self.outstanding = 0  # task requests sent to the parent
        self.computing = False
        self.send_busy = False
        self.recv_busy = False
        self.last_sent_kind = "result"  # so the first pick is a task


class ReturnSimulation:
    """Demand-driven execution of a :class:`ReturnPlatform`."""

    def __init__(
        self,
        platform: ReturnPlatform,
        slack: int = 2,
        horizon=None,
        supply: Optional[int] = None,
        patient: bool = True,
        max_events: int = 5_000_000,
    ):
        if horizon is None and supply is None:
            raise SimulationError("give a horizon, a supply, or both")
        if slack < 1:
            raise SimulationError("slack must be at least 1")
        self.platform = platform
        self.tree: Tree = platform.tree
        self.slack = slack
        self.patient = patient
        self.horizon = Fraction(horizon) if horizon is not None else None
        self.supply = supply
        self.max_events = max_events

        self.engine = Engine()
        self.trace = Trace()
        self.states = {n: _State(self.tree.children(n)) for n in self.tree.nodes()}
        self.released = 0
        self._stop_time: Optional[Fraction] = None

    # ------------------------------------------------------------------
    def _supply_open(self) -> bool:
        if self.horizon is not None and self.engine.now >= self.horizon:
            return False
        if self.supply is not None and self.released >= self.supply:
            return False
        return True

    def _pump(self, node: Hashable) -> None:
        tree = self.tree
        state = self.states[node]
        is_root = node == tree.root

        # the root materialises stock from the supply
        if is_root:
            while state.stock < self.slack + sum(state.pending.values()):
                if not self._supply_open():
                    if self._stop_time is None:
                        self._stop_time = self.engine.now
                    break
                self.released += 1
                state.stock += 1
                self.trace.add_release(self.engine.now, node)
                self.trace.add_buffer_delta(self.engine.now, node, +1)

        # compute
        if (not state.computing and state.stock > 0
                and not is_infinite(tree.w(node))):
            state.computing = True
            state.stock -= 1
            start = self.engine.now
            end = start + tree.w(node)
            self.trace.add_segment(node, COMPUTE, start, end)
            self.engine.schedule_at(end, lambda n=node: self._compute_done(n))

        # send port: alternate between a result (up) and a task (down)
        if not state.send_busy:
            choices = []
            if not is_root and state.results:
                parent = tree.parent(node)
                if not self.states[parent].recv_busy:
                    choices.append("result")
            task_child = None
            if state.stock > 0:
                requesters = [c for c, k in state.pending.items() if k > 0]
                if self.patient:
                    # pick the bandwidth-best requester; if its receive port
                    # is busy, wait for it (do not divert to a slower link)
                    if requesters:
                        best = min(requesters,
                                   key=lambda c: (tree.c(c), str(c)))
                        if not self.states[best].recv_busy:
                            task_child = best
                else:
                    available = [
                        c for c in requesters
                        if not self.states[c].recv_busy
                    ]
                    if available:
                        task_child = min(available,
                                         key=lambda c: (tree.c(c), str(c)))
                if task_child is not None:
                    choices.append("task")
            if choices:
                if len(choices) == 2:
                    kind = "task" if state.last_sent_kind == "result" else "result"
                else:
                    kind = choices[0]
                state.last_sent_kind = kind
                if kind == "result":
                    self._start_result(node)
                else:
                    self._start_task(node, task_child)

        # request tasks from the parent
        if not is_root:
            desired = self.slack + sum(state.pending.values())
            shortfall = desired - state.stock - state.outstanding
            for _ in range(max(shortfall, 0)):
                state.outstanding += 1
                parent = tree.parent(node)
                self.engine.schedule_in(
                    0, lambda p=parent, c=node: self._request_arrives(p, c)
                )

    # ------------------------------------------------------------------
    def _start_task(self, node: Hashable, child: Hashable) -> None:
        state = self.states[node]
        child_state = self.states[child]
        state.pending[child] -= 1
        state.stock -= 1
        state.send_busy = True
        child_state.recv_busy = True
        start = self.engine.now
        end = start + self.tree.c(child)
        self.trace.add_segment(node, SEND, start, end, peer=child)
        self.trace.add_segment(child, RECV, start, end, peer=node)
        self.engine.schedule_at(
            end, lambda n=node, c=child: self._task_done(n, c)
        )

    def _task_done(self, node: Hashable, child: Hashable) -> None:
        state = self.states[node]
        child_state = self.states[child]
        state.send_busy = False
        child_state.recv_busy = False
        child_state.outstanding -= 1
        child_state.stock += 1
        now = self.engine.now
        self.trace.add_buffer_delta(now, node, -1)
        self.trace.add_arrival(now, child)
        self.trace.add_buffer_delta(now, child, +1)
        self._wake(node)
        self._wake(child)

    def _start_result(self, node: Hashable) -> None:
        parent = self.tree.parent(node)
        state = self.states[node]
        parent_state = self.states[parent]
        origin = state.results.popleft()
        state.send_busy = True
        parent_state.recv_busy = True
        start = self.engine.now
        end = start + self.platform.d(node)
        self.trace.add_segment(node, SEND, start, end, peer=parent)
        self.trace.add_segment(parent, RECV, start, end, peer=node)
        self.engine.schedule_at(
            end, lambda n=node, p=parent, o=origin: self._result_done(n, p, o)
        )

    def _result_done(self, node: Hashable, parent: Hashable,
                     origin: Hashable) -> None:
        state = self.states[node]
        parent_state = self.states[parent]
        state.send_busy = False
        parent_state.recv_busy = False
        now = self.engine.now
        self.trace.add_buffer_delta(now, node, -1)
        if parent == self.tree.root:
            self.trace.add_completion(now, origin)
        else:
            parent_state.results.append(origin)
            self.trace.add_buffer_delta(now, parent, +1)
        self._wake(node)
        self._wake(parent)

    def _compute_done(self, node: Hashable) -> None:
        state = self.states[node]
        state.computing = False
        now = self.engine.now
        if node == self.tree.root:
            # the root's results are already home
            self.trace.add_completion(now, node)
            self.trace.add_buffer_delta(now, node, -1)
        else:
            state.results.append(node)
            # the task slot becomes a result slot: net buffer unchanged
        self._pump(node)

    def _request_arrives(self, parent: Hashable, child: Hashable) -> None:
        self.states[parent].pending[child] += 1
        self._pump(parent)

    def _wake(self, node: Hashable) -> None:
        """A port of *node* freed: re-evaluate it and its neighbourhood."""
        self._pump(node)
        parent = self.tree.parent(node)
        if parent is not None:
            self._pump(parent)
        for child in self.tree.children(node):
            self._pump(child)

    # ------------------------------------------------------------------
    def run(self) -> ReturnSimResult:
        for node in self.tree.nodes():
            self._pump(node)
        if self.horizon is not None:
            self.engine.schedule_at(self.horizon,
                                    lambda: self._pump(self.tree.root))
        self.engine.run_all(max_events=self.max_events)
        stop = self._stop_time
        if stop is None and self.horizon is not None:
            stop = self.horizon
        return ReturnSimResult(
            trace=self.trace,
            platform=self.platform,
            released=self.released,
            stop_time=stop,
            end_time=self.trace.end_time,
        )


def simulate_with_returns(
    platform: ReturnPlatform,
    slack: int = 2,
    horizon=None,
    supply: Optional[int] = None,
    patient: bool = True,
) -> ReturnSimResult:
    """Convenience wrapper mirroring :func:`repro.sim.simulate`."""
    return ReturnSimulation(platform, slack=slack, horizon=horizon,
                            supply=supply, patient=patient).run()
