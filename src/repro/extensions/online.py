"""Online re-negotiation: the paper's synchronization-overhead question.

Section 5 leaves for future work "measuring the overhead incurred by the
global synchronization phase" when the root re-initiates BW-First on a
running platform.  This module stages the full scenario inside one
discrete-event simulation:

1. the platform executes the schedule negotiated for the *believed*
   weights;
2. at ``t_drift`` the physical platform changes (links slow down, CPUs
   throttle) — in-flight transfers finish at their old durations, new ones
   take the new times, and the stale schedule's achieved rate degrades;
3. at ``t_renegotiate`` the root re-runs BW-First against the *actual*
   platform.  The negotiation's messages occupy the very send ports that
   carry tasks: for every transaction, a control job of the message
   latency pre-empts the parent's and the child's port.  Its wall-clock
   comes from the latency-modelled protocol run;
4. when the root's acknowledgment arrives, every node switches to the new
   event-driven schedule in place (clock-free nodes just continue into the
   new bunch orders; the root re-anchors its release grid).

The result is a *throughput timeline* from which the report reads: the
rate before the drift, the degraded rate, the dip (if any) during the
negotiation window, and the recovered rate — which converges to the new
platform's exact optimum, as the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from ..analysis.throughput import measured_rate
from ..core.allocation import from_bw_first
from ..core.bwfirst import bw_first
from ..core.incremental import resolve_solver
from ..exceptions import SimulationError
from ..platform.tree import Tree
from ..protocol.runner import run_protocol
from ..schedule.eventdriven import build_schedules
from ..schedule.periods import global_period, tree_periods
from ..sim.simulator import Simulation
from ..telemetry.core import Registry


@dataclass(frozen=True)
class OnlineReport:
    """Outcome of one online drift-and-renegotiate run.

    The re-negotiation's tallies live as ``online.*`` counters in
    ``telemetry``; ``negotiation_messages`` is a thin view over it."""

    old_optimum: Fraction
    new_optimum: Fraction
    rate_before_drift: Fraction
    rate_degraded: Fraction
    rate_recovered: Fraction
    t_drift: Fraction
    t_renegotiate: Fraction
    t_switched: Fraction
    timeline: Tuple[Tuple[Fraction, Fraction], ...]  # (window start, rate)
    result: object = None  # the full SimulationResult (trace inspection)
    telemetry: Registry = field(default_factory=Registry, repr=False)

    @property
    def negotiation_messages(self) -> int:
        """Protocol messages exchanged during the re-negotiation."""
        return self.telemetry.value("online.negotiation_messages")

    @property
    def negotiation_wallclock(self) -> Fraction:
        """Time between initiating the re-negotiation and switching."""
        return self.t_switched - self.t_renegotiate

    @property
    def recovery(self) -> Fraction:
        """Recovered rate as a fraction of the new optimum."""
        if self.new_optimum == 0:
            return Fraction(1)
        return self.rate_recovered / self.new_optimum


def online_renegotiation(
    believed: Tree,
    actual: Tree,
    drift_periods: int = 4,
    degraded_periods: int = 4,
    recovery_periods: int = 8,
    latency_factor=Fraction(1, 100),
    window: Optional[int] = None,
    telemetry: Optional[Registry] = None,
    solver=None,
) -> OnlineReport:
    """Run the full online scenario and measure the throughput timeline.

    Phase lengths are in *believed* global periods: the drift happens after
    ``drift_periods``, the root reacts after another ``degraded_periods``,
    and the run continues for ``recovery_periods`` of the **new** schedule's
    global period after the switch.  *window* (default: the believed global
    period) is the timeline resolution.  Pass ``telemetry=`` to mirror the
    run's ``online.*`` counters into an external registry.

    *solver* picks the centralised solver (see
    :func:`~repro.core.incremental.resolve_solver`): the default
    ``"incremental"`` solves the believed platform once, applies the drift
    as in-place ``w``/``c`` edits and re-solves only the dirty paths from
    cache, also handing the re-negotiation its verification reference;
    ``"full"`` restores the two from-scratch ``bw_first`` runs.
    """
    if set(believed.nodes()) != set(actual.nodes()):
        raise SimulationError("believed and actual platforms must share topology")

    inc = resolve_solver(solver, believed, telemetry=telemetry)
    old_result = bw_first(believed) if inc is None else inc.solve()
    old_allocation = from_bw_first(old_result)
    if inc is None:
        old_periods = tree_periods(old_allocation)
        old_schedules = build_schedules(old_allocation, periods=old_periods)
    else:
        # fragment-caching reconstruction: the post-drift rebuild below
        # then recomputes only the drifted nodes' root paths
        old_periods, old_schedules = inc.schedule_builder().build(old_allocation)
    old_t = global_period(old_periods, telemetry=telemetry, tree=believed)

    if inc is None:
        new_result = bw_first(actual)
        new_allocation = from_bw_first(new_result)
        new_periods = tree_periods(new_allocation)
        new_schedules = build_schedules(new_allocation, periods=new_periods)
    else:
        inc.apply_platform(actual)  # dirty-path re-fingerprint, cache kept
        new_result = inc.solve()
        new_allocation = from_bw_first(new_result)
        new_periods, new_schedules = inc.schedule_builder().build(new_allocation)
    new_t = global_period(new_periods, telemetry=telemetry, tree=actual)

    t_drift = Fraction(old_t * drift_periods)
    t_renegotiate = t_drift + old_t * degraded_periods

    # the negotiation against the actual platform (messages + wall-clock)
    negotiation = run_protocol(actual, latency_factor=latency_factor,
                               reference=new_result)
    registry = Registry()

    def count(name: str, amount: int) -> None:
        if amount:
            registry.counter(name).inc(amount)
            if telemetry is not None:
                telemetry.counter(name).inc(amount)

    count("online.negotiation_messages", negotiation.messages)
    count("online.transactions", negotiation.transactions)
    t_switched = t_renegotiate + negotiation.completion_time
    horizon = t_switched + Fraction(new_t * recovery_periods)

    sim = Simulation(
        believed,
        dict(old_schedules),
        dict(old_periods),
        horizon=horizon,
    )

    sim.engine.schedule_at(t_drift, lambda: sim.swap_platform(actual))

    def start_negotiation() -> None:
        # every transaction costs one control job on the proposing parent
        # and one on the acknowledging child
        for node, actor in negotiation.actors.items():
            for child, _beta, _theta in actor.transactions:
                latency = actual.c(child) * Fraction(latency_factor)
                sim.inject_control(node, latency)
                sim.inject_control(child, latency)

    sim.engine.schedule_at(t_renegotiate, start_negotiation)
    sim.engine.schedule_at(
        t_switched, lambda: sim.reconfigure(new_schedules, new_periods)
    )

    result = sim.run()

    w = Fraction(window if window is not None else old_t)
    timeline: List[Tuple[Fraction, Fraction]] = []
    start = Fraction(0)
    stop = result.stop_time if result.stop_time is not None else result.end_time
    while start + w <= stop:  # the wind-down tail is not part of the story
        timeline.append((start, measured_rate(result.trace, start, start + w)))
        start += w

    def rate(lo: Fraction, hi: Fraction) -> Fraction:
        return measured_rate(result.trace, lo, hi)

    return OnlineReport(
        old_optimum=old_allocation.throughput,
        new_optimum=new_allocation.throughput,
        rate_before_drift=rate(Fraction(0), t_drift),
        rate_degraded=rate(t_drift + old_t, t_renegotiate),
        rate_recovered=rate(
            t_switched + (horizon - t_switched) / 2, horizon
        ),
        t_drift=t_drift,
        t_renegotiate=t_renegotiate,
        t_switched=t_switched,
        timeline=tuple(timeline),
        result=result,
        telemetry=registry,
    )
