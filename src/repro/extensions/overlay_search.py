"""Searching for the best overlay tree on a physical network (Section 5).

The paper argues BW-First "might be a useful tool for topological studies,
which aim at determining the best tree overlay network that is built on top
of the physical network topology — a quick way to evaluate the throughput
of a tree allows to consider a wider set of trees."  This module is that
tool:

* :func:`overlay_from_parents` — materialise a spanning arborescence of the
  physical graph as a schedulable :class:`~repro.platform.tree.Tree`;
* :func:`hill_climb` — local search over overlays: repeatedly re-attach one
  node to a different physical neighbour when that increases the BW-First
  throughput; seeded, with random restarts from perturbed shortest-path
  trees;
* :func:`enumerate_overlays` — exhaustive enumeration of all spanning
  trees for *small* graphs (the ground truth the tests compare against).

Throughput evaluation is exact and cheap (BW-First visits only the nodes
the schedule uses), which is what makes thousands of candidate overlays per
second feasible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import networkx as nx

from ..core.bwfirst import bw_first
from ..core.rates import INFINITY, as_fraction
from ..exceptions import PlatformError
from ..platform.tree import Tree

Parents = Dict[Hashable, Hashable]


def overlay_from_parents(
    graph: nx.Graph,
    root: Hashable,
    parents: Parents,
    node_weights: Mapping[Hashable, object],
    edge_cost_attr: str = "c",
) -> Tree:
    """Build the overlay :class:`Tree` described by a parent map.

    *parents* maps every non-root node to its overlay parent; each pair must
    be a physical edge of *graph*.  Raises on cycles or disconnection.
    """
    children: Dict[Hashable, List[Hashable]] = {n: [] for n in graph.nodes}
    for node, parent in parents.items():
        if node == root:
            raise PlatformError("the root cannot have a parent")
        if not graph.has_edge(parent, node):
            raise PlatformError(f"({parent!r}, {node!r}) is not a physical link")
        children[parent].append(node)

    tree = Tree(root, node_weights.get(root, INFINITY))
    stack = [root]
    while stack:
        parent = stack.pop()
        for child in children[parent]:
            cost = as_fraction(graph.edges[parent, child][edge_cost_attr])
            tree.add_node(child, node_weights.get(child, INFINITY),
                          parent=parent, c=cost)
            stack.append(child)
    if len(tree) != graph.number_of_nodes():
        raise PlatformError("parent map does not span the graph (cycle?)")
    return tree


def _initial_parents(graph: nx.Graph, root: Hashable,
                     edge_cost_attr: str) -> Parents:
    """Shortest-path-tree parents (the natural starting overlay)."""
    paths = nx.shortest_path(graph, source=root, weight=edge_cost_attr)
    missing = set(graph.nodes) - set(paths)
    if missing:
        raise PlatformError(f"nodes unreachable from the root: {missing}")
    return {node: path[-2] for node, path in paths.items() if node != root}


def _subtree(parents: Parents, root: Hashable, node: Hashable) -> set:
    """All overlay descendants of *node* (inclusive)."""
    children: Dict[Hashable, List[Hashable]] = {}
    for child, parent in parents.items():
        children.setdefault(parent, []).append(child)
    out = set()
    stack = [node]
    while stack:
        current = stack.pop()
        out.add(current)
        stack.extend(children.get(current, []))
    return out


@dataclass(frozen=True)
class OverlaySearchResult:
    """Best overlay found and the search trajectory."""

    tree: Tree
    throughput: Fraction
    evaluations: int
    history: Tuple[Fraction, ...]  # best-so-far after each improvement

    @property
    def improvement(self) -> Fraction:
        """Gain over the starting overlay (history[0])."""
        if not self.history or self.history[0] == 0:
            return Fraction(0)
        return self.throughput / self.history[0] - 1


def hill_climb(
    graph: nx.Graph,
    root: Hashable,
    node_weights: Mapping[Hashable, object],
    edge_cost_attr: str = "c",
    iterations: int = 300,
    restarts: int = 3,
    seed: int = 0,
) -> OverlaySearchResult:
    """Seeded stochastic hill climbing over overlay trees.

    Each step re-attaches one random node to a random physical neighbour
    outside its own subtree and keeps the move iff the exact BW-First
    throughput does not decrease (accepting sideways moves lets the search
    traverse plateaus).  Restarts perturb the shortest-path tree.
    """
    rng = random.Random(seed)
    evaluations = 0

    def evaluate(parents: Parents) -> Fraction:
        nonlocal evaluations
        evaluations += 1
        tree = overlay_from_parents(graph, root, parents,
                                    node_weights, edge_cost_attr)
        return bw_first(tree).throughput

    base = _initial_parents(graph, root, edge_cost_attr)
    best_parents = dict(base)
    best_value = evaluate(best_parents)
    history: List[Fraction] = [best_value]

    nodes = [n for n in graph.nodes if n != root]
    for restart in range(restarts):
        parents = dict(base)
        if restart > 0:  # perturb: a few random (valid) re-attachments
            for _ in range(min(3, len(nodes))):
                node = rng.choice(nodes)
                banned = _subtree(parents, root, node)
                options = [u for u in graph.neighbors(node) if u not in banned]
                if options:
                    parents[node] = rng.choice(options)
        value = evaluate(parents)

        for _ in range(iterations):
            node = rng.choice(nodes)
            banned = _subtree(parents, root, node)
            options = [u for u in graph.neighbors(node)
                       if u not in banned and u != parents[node]]
            if not options:
                continue
            candidate = dict(parents)
            candidate[node] = rng.choice(options)
            candidate_value = evaluate(candidate)
            if candidate_value >= value:
                parents, value = candidate, candidate_value
                if value > best_value:
                    best_parents, best_value = dict(parents), value
                    history.append(value)

    tree = overlay_from_parents(graph, root, best_parents,
                                node_weights, edge_cost_attr)
    return OverlaySearchResult(
        tree=tree,
        throughput=best_value,
        evaluations=evaluations,
        history=tuple(history),
    )


def enumerate_overlays(
    graph: nx.Graph,
    root: Hashable,
    node_weights: Mapping[Hashable, object],
    edge_cost_attr: str = "c",
    max_nodes: int = 8,
) -> Tuple[Tree, Fraction, int]:
    """Exhaustive optimum over all spanning trees (small graphs only).

    Returns ``(best_tree, best_throughput, candidates_examined)``.  Guarded
    by *max_nodes* — the number of spanning trees grows super-exponentially.
    """
    n = graph.number_of_nodes()
    if n > max_nodes:
        raise PlatformError(
            f"enumeration is limited to {max_nodes} nodes (got {n})"
        )
    best: Optional[Tuple[Tree, Fraction]] = None
    examined = 0
    edges = list(graph.edges)
    for subset in combinations(edges, n - 1):
        candidate = nx.Graph(list(subset))
        if candidate.number_of_nodes() != n or not nx.is_connected(candidate):
            continue
        if root not in candidate:
            continue
        parents = {}
        for parent, child in nx.bfs_edges(candidate, source=root):
            parents[child] = parent
        tree = overlay_from_parents(graph, root, parents,
                                    node_weights, edge_cost_attr)
        examined += 1
        value = bw_first(tree).throughput
        if best is None or value > best[1]:
            best = (tree, value)
    if best is None:
        raise PlatformError("the graph has no spanning tree containing the root")
    return best[0], best[1], examined
