"""The traditional synchronized schedule baseline (Sections 6–7 strawman).

The textbook way to realise a steady-state allocation is to synchronise the
whole platform on the **global period** ``T`` — the lcm of every node's
local period — and to spend a *dead start-up phase* pushing tasks down the
tree without computing, until every node holds its per-period buffer
``χ_in``.  The paper criticises both aspects: ``T`` can be embarrassingly
long (requiring large buffers), and the dead start-up wastes
``T × depth`` time units of computation.

This module packages that baseline on top of the shared simulator: the same
optimal allocation and interleaved orders, but with computing gated until
the χ_in buffer is filled (``compute_during_startup=False``).  Experiment E9
contrasts it with the paper's compute-from-the-start strategy.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..core.allocation import Allocation, from_bw_first
from ..core.bwfirst import bw_first
from ..platform.tree import Tree
from ..schedule.local import interleaved_order
from ..schedule.periods import global_period, tree_periods
from ..sim.simulator import SimulationResult, simulate


def simulate_synchronized(
    tree: Tree,
    allocation: Optional[Allocation] = None,
    horizon=None,
    supply: Optional[int] = None,
) -> SimulationResult:
    """Run the optimal allocation with the traditional buffered start-up.

    Identical to :func:`repro.sim.simulate` except nodes perform no useful
    computation until they have buffered their steady-state task count.
    """
    return simulate(
        tree,
        allocation=allocation,
        policy=interleaved_order,
        horizon=horizon,
        supply=supply,
        compute_during_startup=False,
    )


def traditional_startup_bound(tree: Tree, allocation: Optional[Allocation] = None) -> Fraction:
    """The dead start-up length of the traditional approach.

    "This takes T times the maximum depth of the tree, where T is the
    steady-state period" (Section 7).
    """
    if allocation is None:
        allocation = from_bw_first(bw_first(tree))
    periods = tree_periods(allocation)
    period = global_period(periods)
    active = [n for n in periods if allocation.eta_in.get(n, 0) > 0
              or allocation.alpha.get(n, 0) > 0]
    depth = max((tree.depth(n) for n in active), default=0)
    return Fraction(period) * depth
