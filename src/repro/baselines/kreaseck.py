"""The autonomous demand-driven protocol of Kreaseck et al. (reconstruction).

Kreaseck et al. (cited as [12]) proposed *autonomous* bandwidth-centric
protocols in which nodes pull work: a node requests tasks from its parent
when it runs low, parents serve pending requests fastest-link-first, and
requests cascade up the hierarchy.  The paper (Sections 2 and 7) observes
that, under the non-interruptible communication model, this protocol can
take non-optimal decisions, suffers long start-up phases and buffers
unnecessarily many tasks — the claims experiment E9 measures.

Reconstruction notes (their paper is unavailable; see DESIGN.md §5):

* demand is expressed as single-task *request* messages travelling up with
  a configurable latency (a fraction of the link's task-communication time,
  ``request_latency_factor``, default 5%);
* each node keeps a *stock* of unassigned tasks and wants
  ``slack + Σ pending child requests`` of them; whenever its outstanding
  requests fall short of that it requests more;
* an idle CPU always claims a stocked task first (serving oneself costs no
  port time); otherwise the send port serves the *pending requester with
  the fastest link* — the bandwidth-centric priority;
* both of Kreaseck et al.'s communication models are implemented:
  **non-interruptible** (the default, matching this paper's model) and
  **interruptible**, where a request from a faster-link child preempts an
  in-flight transfer to a slower-link child (the transfer resumes later
  from where it stopped);
* the root owns the (finite or horizon-bounded) supply and never requests.

The simulator reuses the shared :class:`~repro.sim.engine.Engine` and
:class:`~repro.sim.tracing.Trace`, so every analysis helper applies to its
output unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..core.rates import is_infinite
from ..exceptions import SimulationError
from ..platform.tree import Tree
from ..sim.engine import Engine
from ..sim.tracing import COMPUTE, RECV, SEND, Trace
from ..telemetry.core import Registry


@dataclass
class DemandDrivenResult:
    """Outcome of a demand-driven run (mirrors ``SimulationResult``).

    The run's tallies live as ``baseline.*`` counters in ``telemetry`` (a
    per-result :class:`~repro.telemetry.core.Registry`); the historical
    ``request_messages`` / ``interruptions`` attributes are thin views
    over it, so existing callers and benchmarks keep working.
    """

    trace: Trace
    tree: Tree
    released: int
    stop_time: Optional[Fraction]
    end_time: Fraction
    telemetry: Registry = field(default_factory=Registry, repr=False)

    @property
    def request_messages(self) -> int:
        """Single-task request messages that travelled up the tree."""
        return self.telemetry.value("baseline.request_messages")

    @property
    def interruptions(self) -> int:
        """In-flight transfers preempted (interruptible mode only)."""
        return self.telemetry.value("baseline.interruptions")

    @property
    def completed(self) -> int:
        return self.trace.completed

    @property
    def wind_down(self) -> Optional[Fraction]:
        if self.stop_time is None or not self.trace.completions:
            return None
        return max(self.end_time - self.stop_time, Fraction(0))


class _State:
    __slots__ = ("name", "stock", "outstanding", "pending", "computing",
                 "sending", "served", "transfer", "send_token", "partial")

    def __init__(self, name: Hashable):
        self.name = name
        self.stock = 0          # unassigned buffered tasks
        self.outstanding = 0    # requests sent to parent, not yet fulfilled
        self.pending: Dict[Hashable, int] = {}  # unserved child requests
        self.computing = False
        self.sending = False
        self.served = 0         # tasks this node ever dispensed to children
        # interruptible-mode bookkeeping
        self.transfer = None    # (child, start, end) of the in-flight send
        self.send_token = 0     # invalidates stale send-done events
        self.partial: Dict[Hashable, Fraction] = {}  # remaining transfer time


class DemandDrivenSimulation:
    """Pull-based Master–Worker execution on a heterogeneous tree."""

    def __init__(
        self,
        tree: Tree,
        slack: int = 1,
        request_latency_factor: Fraction = Fraction(1, 20),
        horizon: Optional[Fraction] = None,
        supply: Optional[int] = None,
        interruptible: bool = False,
        max_events: int = 5_000_000,
        telemetry: Optional[Registry] = None,
    ):
        if horizon is None and supply is None:
            raise SimulationError("give a horizon, a supply, or both")
        if slack < 1:
            raise SimulationError("slack must be at least 1")
        self.tree = tree
        self.slack = slack
        self.latency_factor = Fraction(request_latency_factor)
        self.horizon = Fraction(horizon) if horizon is not None else None
        self.supply = supply
        self.interruptible = interruptible
        self.max_events = max_events

        self.engine = Engine()
        self.trace = Trace()
        self.states = {n: _State(n) for n in tree.nodes()}
        for n in tree.nodes():
            self.states[n].pending = {c: 0 for c in tree.children(n)}
        self.released = 0
        # the run's own registry backs the result's attribute views; an
        # external registry (telemetry=) additionally receives every tally
        self.registry = Registry()
        self._external = telemetry
        self._stop_time: Optional[Fraction] = None

    def _count(self, name: str, **labels) -> None:
        self.registry.counter(name, **labels).inc()
        if self._external is not None:
            self._external.counter(name, **labels).inc()

    @property
    def request_messages(self) -> int:
        return self.registry.value("baseline.request_messages")

    @property
    def interruptions(self) -> int:
        return self.registry.value("baseline.interruptions")

    # ------------------------------------------------------------------
    def _supply_open(self) -> bool:
        if self.horizon is not None and self.engine.now >= self.horizon:
            return False
        if self.supply is not None and self.released >= self.supply:
            return False
        return True

    def _note_supply_cut(self) -> None:
        if self._stop_time is None:
            self._stop_time = self.engine.now

    def _pump(self, node: Hashable) -> None:
        """Drive every local decision of *node* that is currently possible."""
        state = self.states[node]
        is_root = node == self.tree.root

        # 1. the root draws its stock straight from the supply
        if is_root:
            while state.stock < self.slack + sum(state.pending.values()):
                if not self._supply_open():
                    self._note_supply_cut()
                    break
                self.released += 1
                state.stock += 1
                self.trace.add_release(self.engine.now, node)
                self.trace.add_buffer_delta(self.engine.now, node, +1)

        # 2. an idle CPU claims a stocked task (no port cost)
        if (not state.computing and state.stock > 0
                and not is_infinite(self.tree.w(node))):
            state.computing = True
            state.stock -= 1
            start = self.engine.now
            end = start + self.tree.w(node)
            self.trace.add_segment(node, COMPUTE, start, end)
            self.engine.schedule_at(end, lambda n=node: self._compute_done(n))

        # 3. the send port serves the fastest-link pending requester; an
        #    interrupted transfer resumes with the priority of its child
        if not state.sending:
            candidates = []
            if state.stock > 0:
                candidates.extend(
                    (c, False) for c, k in state.pending.items() if k > 0
                )
            candidates.extend((c, True) for c in state.partial)
            if candidates:
                # at equal priority a partial resumes before a fresh send to
                # the same child — otherwise a second interruption could
                # overwrite (lose) the stored remaining time
                child, resume = min(
                    candidates,
                    key=lambda t: (self.tree.c(t[0]), str(t[0]), not t[1]),
                )
                if resume:
                    duration = state.partial.pop(child)
                else:
                    state.pending[child] -= 1
                    state.stock -= 1
                    duration = self.tree.c(child)
                state.sending = True
                state.send_token += 1
                start = self.engine.now
                end = start + duration
                state.transfer = (child, start, end)
                self.engine.schedule_at(
                    end,
                    lambda n=node, c=child, t=state.send_token:
                        self._send_done(n, c, t),
                )

        # 4. request more from the parent when demand exceeds cover
        if not is_root:
            desired = self.slack + sum(state.pending.values())
            shortfall = desired - state.stock - state.outstanding
            for _ in range(max(shortfall, 0)):
                state.outstanding += 1
                self._count("baseline.request_messages")
                parent = self.tree.parent(node)
                latency = self.tree.c(node) * self.latency_factor
                self.engine.schedule_in(
                    latency, lambda p=parent, c=node: self._request_arrives(p, c)
                )

    # ------------------------------------------------------------------
    def _request_arrives(self, parent: Hashable, child: Hashable) -> None:
        state = self.states[parent]
        state.pending[child] += 1
        if (
            self.interruptible
            and state.sending
            and state.stock > 0
            and state.transfer is not None
            and self.tree.c(child) < self.tree.c(state.transfer[0])
        ):
            self._interrupt(parent)
        self._pump(parent)

    def _interrupt(self, node: Hashable) -> None:
        """Preempt the in-flight transfer; it resumes later where it left off."""
        state = self.states[node]
        child, start, end = state.transfer
        now = self.engine.now
        if now > start:  # the partial occupancy is still real port time
            self.trace.add_segment(node, SEND, start, now, peer=child)
            self.trace.add_segment(child, RECV, start, now, peer=node)
        state.partial[child] = end - now
        state.sending = False
        state.transfer = None
        state.send_token += 1  # invalidate the scheduled completion event
        self._count("baseline.interruptions")

    def _compute_done(self, node: Hashable) -> None:
        state = self.states[node]
        state.computing = False
        now = self.engine.now
        self.trace.add_completion(now, node)
        self.trace.add_buffer_delta(now, node, -1)
        self._pump(node)

    def _send_done(self, node: Hashable, child: Hashable, token: int) -> None:
        state = self.states[node]
        if token != state.send_token or not state.sending:
            return  # the transfer was interrupted; a stale event fired
        _, start, end = state.transfer
        self.trace.add_segment(node, SEND, start, end, peer=child)
        self.trace.add_segment(child, RECV, start, end, peer=node)
        state.transfer = None
        state.sending = False
        state.served += 1
        self.trace.add_buffer_delta(self.engine.now, node, -1)
        child_state = self.states[child]
        child_state.outstanding -= 1
        child_state.stock += 1
        self.trace.add_arrival(self.engine.now, child)
        self.trace.add_buffer_delta(self.engine.now, child, +1)
        self._pump(child)
        self._pump(node)

    # ------------------------------------------------------------------
    def run(self) -> DemandDrivenResult:
        # kick-off: every node evaluates its demand at t=0
        for node in self.tree.nodes():
            self._pump(node)
        if self.horizon is not None:
            # periodically re-pump the root so a horizon cut is noticed even
            # when no other event lands exactly on it
            self.engine.schedule_at(self.horizon, lambda: self._pump(self.tree.root))
        self.engine.run_all(max_events=self.max_events)
        stop = self._stop_time
        if stop is None and self.horizon is not None:
            stop = self.horizon
        return DemandDrivenResult(
            trace=self.trace,
            tree=self.tree,
            released=self.released,
            stop_time=stop,
            end_time=self.trace.end_time,
            telemetry=self.registry,
        )


def simulate_demand_driven(
    tree: Tree,
    slack: int = 1,
    request_latency_factor=Fraction(1, 20),
    horizon=None,
    supply: Optional[int] = None,
    interruptible: bool = False,
    telemetry: Optional[Registry] = None,
) -> DemandDrivenResult:
    """Convenience wrapper mirroring :func:`repro.sim.simulate`.

    ``interruptible=True`` selects Kreaseck et al.'s second communication
    model: a request from a faster-link child preempts an in-flight
    transfer to a slower-link child; the preempted transfer resumes later
    from where it stopped.  Pass ``telemetry=`` to mirror the run's
    ``baseline.*`` counters into an external registry.
    """
    sim = DemandDrivenSimulation(
        tree,
        slack=slack,
        request_latency_factor=Fraction(request_latency_factor),
        horizon=horizon,
        supply=supply,
        interruptible=interruptible,
        telemetry=telemetry,
    )
    return sim.run()
