"""Baseline scheduling strategies the paper compares against.

* :mod:`~repro.baselines.kreaseck` — the autonomous demand-driven protocol
  of Kreaseck et al. (reconstructed);
* :mod:`~repro.baselines.synchronized` — the traditional global-period
  schedule with a dead (no-compute) start-up phase;
* :mod:`~repro.baselines.greedy` — naive round-robin task farming, a sanity
  floor not taken from the paper.
"""

from .greedy import GreedyResult, GreedySimulation, simulate_greedy
from .kreaseck import (
    DemandDrivenResult,
    DemandDrivenSimulation,
    simulate_demand_driven,
)
from .synchronized import simulate_synchronized, traditional_startup_bound

__all__ = [
    "DemandDrivenResult",
    "DemandDrivenSimulation",
    "simulate_demand_driven",
    "simulate_synchronized",
    "traditional_startup_bound",
    "GreedyResult",
    "GreedySimulation",
    "simulate_greedy",
]
