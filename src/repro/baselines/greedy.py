"""A naive greedy task-farming baseline (sanity floor).

The simplest Master–Worker policy anyone would write first: every node
eagerly pushes tasks to whichever child's link frees up next, round-robin,
with no notion of bandwidth-centric priority or steady-state rates.  It is
*not* from the paper — it exists to show how much the bandwidth-centric
allocation buys over uninformed farming on heterogeneous platforms
(benchmarks print it as a floor).

Mechanics: each node keeps every child "covered" up to a *window* of
unconsumed tasks (sent but not yet computed-or-forwarded by the child — a
zero-latency credit flows back on consumption), serving children in
round-robin order; an idle CPU always claims a task first.  On a
bandwidth-limited platform this wastes the port shipping tasks to slow
links that the optimal schedule would never use.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..core.rates import is_infinite
from ..exceptions import SimulationError
from ..platform.tree import Tree
from ..sim.engine import Engine
from ..sim.tracing import COMPUTE, RECV, SEND, Trace


@dataclass
class GreedyResult:
    """Outcome of a greedy-farming run."""

    trace: Trace
    tree: Tree
    released: int
    stop_time: Optional[Fraction]
    end_time: Fraction

    @property
    def completed(self) -> int:
        return self.trace.completed

    @property
    def wind_down(self) -> Optional[Fraction]:
        if self.stop_time is None or not self.trace.completions:
            return None
        return max(self.end_time - self.stop_time, Fraction(0))


class _State:
    __slots__ = ("stock", "computing", "sending", "rr", "inflight")

    def __init__(self, children) -> None:
        self.stock = 0
        self.computing = False
        self.sending = False
        self.rr = deque(children)  # round-robin order over children
        self.inflight: Dict[Hashable, int] = {c: 0 for c in children}


class GreedySimulation:
    """Eager round-robin task farming on a tree."""

    def __init__(
        self,
        tree: Tree,
        window: int = 2,
        horizon=None,
        supply: Optional[int] = None,
        max_events: int = 5_000_000,
    ):
        if horizon is None and supply is None:
            raise SimulationError("give a horizon, a supply, or both")
        if window < 1:
            raise SimulationError("window must be at least 1")
        self.tree = tree
        self.window = window
        self.horizon = Fraction(horizon) if horizon is not None else None
        self.supply = supply
        self.max_events = max_events
        self.engine = Engine()
        self.trace = Trace()
        self.states = {n: _State(tree.children(n)) for n in tree.nodes()}
        self.released = 0
        self._stop_time: Optional[Fraction] = None

    def _supply_open(self) -> bool:
        if self.horizon is not None and self.engine.now >= self.horizon:
            return False
        if self.supply is not None and self.released >= self.supply:
            return False
        return True

    def _pump(self, node: Hashable) -> None:
        state = self.states[node]
        is_root = node == self.tree.root

        if is_root:
            # the root materialises stock on demand
            while state.stock < 1 + len(state.rr) and self._supply_open():
                self.released += 1
                state.stock += 1
                self.trace.add_release(self.engine.now, node)
                self.trace.add_buffer_delta(self.engine.now, node, +1)
            if not self._supply_open() and self._stop_time is None:
                self._stop_time = self.engine.now

        if (not state.computing and state.stock > 0
                and not is_infinite(self.tree.w(node))):
            state.computing = True
            state.stock -= 1
            self._credit(node)
            start = self.engine.now
            end = start + self.tree.w(node)
            self.trace.add_segment(node, COMPUTE, start, end)
            self.engine.schedule_at(end, lambda n=node: self._compute_done(n))

        if not state.sending and state.stock > 0 and state.rr:
            # next round-robin child under its unconsumed-task window
            for _ in range(len(state.rr)):
                child = state.rr[0]
                state.rr.rotate(-1)
                if state.inflight[child] < self.window:
                    state.inflight[child] += 1
                    state.stock -= 1
                    self._credit(node)
                    state.sending = True
                    start = self.engine.now
                    end = start + self.tree.c(child)
                    self.trace.add_segment(node, SEND, start, end, peer=child)
                    self.trace.add_segment(child, RECV, start, end, peer=node)
                    self.engine.schedule_at(
                        end, lambda n=node, c=child: self._send_done(n, c)
                    )
                    break

    def _credit(self, node: Hashable) -> None:
        """*node* consumed a stocked task: release its parent's window slot."""
        parent = self.tree.parent(node)
        if parent is None:
            return
        self.states[parent].inflight[node] -= 1
        self._pump(parent)

    def _compute_done(self, node: Hashable) -> None:
        self.states[node].computing = False
        now = self.engine.now
        self.trace.add_completion(now, node)
        self.trace.add_buffer_delta(now, node, -1)
        self._pump(node)

    def _send_done(self, node: Hashable, child: Hashable) -> None:
        state = self.states[node]
        state.sending = False
        self.trace.add_buffer_delta(self.engine.now, node, -1)
        child_state = self.states[child]
        child_state.stock += 1
        self.trace.add_arrival(self.engine.now, child)
        self.trace.add_buffer_delta(self.engine.now, child, +1)
        self._pump(child)
        self._pump(node)

    def run(self) -> GreedyResult:
        self._pump(self.tree.root)
        if self.horizon is not None:
            self.engine.schedule_at(self.horizon, lambda: self._pump(self.tree.root))
        self.engine.run_all(max_events=self.max_events)
        stop = self._stop_time
        if stop is None and self.horizon is not None:
            stop = self.horizon
        return GreedyResult(
            trace=self.trace,
            tree=self.tree,
            released=self.released,
            stop_time=stop,
            end_time=self.trace.end_time,
        )


def simulate_greedy(tree: Tree, window: int = 2, horizon=None,
                    supply: Optional[int] = None) -> GreedyResult:
    """Convenience wrapper mirroring :func:`repro.sim.simulate`."""
    return GreedySimulation(tree, window=window, horizon=horizon, supply=supply).run()
