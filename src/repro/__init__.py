"""repro — bandwidth-centric steady-state scheduling on heterogeneous trees.

A production-quality reproduction of

    Cyril Banino, *A Distributed Procedure for Bandwidth-Centric Scheduling
    of Independent-Task Applications*, IPPS 2005.

Quickstart
----------
>>> from repro import Tree, bw_first
>>> t = Tree("master", w="inf")          # a pure master (no computing power)
>>> t.add_node("fast", w=1, parent="master", c=1)
>>> t.add_node("slow", w=2, parent="master", c=2)
>>> result = bw_first(t)
>>> result.throughput
Fraction(1, 1)

The package layers:

* :mod:`repro.platform` — the heterogeneous tree model (Section 3);
* :mod:`repro.core` — Proposition 1, the bottom-up method, **BW-First**
  (Algorithm 1) and LP oracles (Sections 4–5);
* :mod:`repro.schedule` — schedule reconstruction: asynchronous periods,
  event-driven bunches and the interleaved local schedule (Section 6);
* :mod:`repro.sim` — a discrete-event simulator of the single-port
  full-overlap model with exact rational time (Sections 7–8);
* :mod:`repro.protocol` — BW-First as an actual message-passing protocol;
* :mod:`repro.baselines` — Kreaseck-style demand-driven, synchronized and
  greedy baselines;
* :mod:`repro.analysis` — throughput/buffer/phase analysis and ASCII Gantt;
* :mod:`repro.telemetry` — unified observability: counters/gauges/
  histograms/spans behind a :class:`~repro.telemetry.Registry`, with
  Chrome-trace, Prometheus and JSONL exporters (pass ``telemetry=`` to the
  protocol runner, the simulator or ``resilient_run``);
* :mod:`repro.extensions` — result-return model (Section 9), dynamic
  adaptation, finite-N makespan, infinite trees.
"""

from .core import (
    INFINITY,
    Allocation,
    BottomUpResult,
    BWFirstResult,
    bottom_up_throughput,
    bw_first,
    from_bw_first,
    lp_throughput,
    lp_throughput_exact,
    reduce_fork,
    reduce_fork_tree,
)
from .exceptions import (
    PlatformError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    SolverError,
)
from .platform import Tree, TreeBuilder, load_tree, save_tree, tree_from_nested
from .telemetry import NullRegistry, Registry

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "INFINITY",
    "Tree",
    "TreeBuilder",
    "tree_from_nested",
    "save_tree",
    "load_tree",
    "Allocation",
    "BottomUpResult",
    "BWFirstResult",
    "bottom_up_throughput",
    "bw_first",
    "from_bw_first",
    "lp_throughput",
    "lp_throughput_exact",
    "reduce_fork",
    "reduce_fork_tree",
    "Registry",
    "NullRegistry",
    "ReproError",
    "PlatformError",
    "ScheduleError",
    "SimulationError",
    "ProtocolError",
    "SolverError",
]
